"""The overflow-consolidation subsystem of the incremental stitcher.

When an arriving patch fits no live free rectangle even though the
pending canvases hold ample free space (a *wasteful overflow*), the
incremental stitcher tries to *consolidate*: dissolve a few of the
least-efficient canvases and re-home their patches so the packing needs
at least one canvas fewer than just opening a new one.  PR 2 introduced
that machinery inline in :mod:`repro.core.stitching`; this module is its
extraction into a subsystem of its own, with the trial *strategy* made
pluggable.

:class:`ConsolidationEngine` owns the pieces every strategy shares:

* the running **efficiency min-heap** over the live non-oversized
  canvases (lazy invalidation via per-slot version stamps), so victims
  pop in ascending-efficiency order instead of rescanning every canvas
  per overflow;
* the **failed-attempt backoff** (retry only once the queue grew by the
  current failure streak — probe bookkeeping only, cleared on reset);
* dispatch to a :class:`ConsolidationPolicy`.

Three policies implement the trial (the ``consolidation=`` knob on
:class:`~repro.core.stitching.IncrementalStitcher`,
:class:`~repro.core.scheduler.TangramScheduler`, and both experiment
configs):

``"repack"``
    PR 2/3 behaviour, extracted verbatim: batch re-pack the victims'
    pooled patches plus the incoming one from scratch
    (:meth:`~repro.core.stitching.PatchStitchingSolver.pack_within`) and
    adopt the result only when it saves a canvas.  Pinned byte-identical
    to the pre-refactor path by ``tests/test_consolidation.py``.
``"memo"`` (the default)
    ``"repack"`` plus a victim-pool signature cache: a pool that just
    failed to consolidate is rejected in O(victims) — no trial pack —
    until any member canvas changes.  The signature is the tuple of
    ``(slot, stamp)`` pairs from the engine's version stamps, so any
    mutation of a member canvas (a patch landing on it, a partial
    re-pack replacing it) invalidates the entry by construction; per
    signature a small *frontier* of failed patch footprints is kept and
    a new patch is only rejected when it dominates a failed one in both
    dimensions (an equal-or-harder re-trial of an unchanged pool).
    Decisions are byte-identical to ``"repack"`` on every workload the
    equivalence suite runs; the cache only skips provably-or-empirically
    repeat failures.
``"merge"``
    Incremental consolidation: instead of batch re-packing a victim
    pool, migrate the patches of the single worst canvas into its
    siblings' existing free rectangles (probed through the size-class
    :class:`~repro.core.freerect_index.FreeRectIndex` when enabled),
    then reuse the emptied canvas for the incoming patch.  Saves the
    same one canvas as an adopted re-pack at O(victim patches) probes
    instead of a from-scratch trial pack.  Falls back to the
    (memo-cached) trial re-pack whenever migration stalls (some patch
    fits no sibling).  Packing metrics drift slightly from ``"repack"``
    (bounded by the drift tests and the
    ``consolidation_stream_efficiency_ratio`` benchmark gate).

The necessary-condition pre-checks run before any trial pack, for every
policy that re-packs:

* the victims' combined free capacity must at least hold the incoming
  patch (PR 2);
* the pool must not contain more *unpairable* patches — wider than half
  the canvas **and** taller than half the canvas, so no two of them can
  ever share a canvas — than the trial is allowed canvases (new here).
  Both are exact: they only reject pools whose trial pack provably
  fails, so they never change a decision.  (A tempting stronger check —
  rejecting when the incoming patch exceeds every victim's largest free
  rectangle — is *unsound*: a from-scratch re-pack can create room no
  current free rectangle offers; measured on the benchmark mixes it
  would wrongly reject ~6% of consolidating trials.)
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.canvas_index import height_class
from repro.core.patches import Patch

if TYPE_CHECKING:  # pragma: no cover - stitching imports us lazily
    from repro.core.canvas import Canvas
    from repro.core.stitching import IncrementalStitcher, PlacementPlan

__all__ = [
    "CONSOLIDATION_POLICIES",
    "ConsolidationEngine",
    "ConsolidationPolicy",
    "RepackPolicy",
    "MemoPolicy",
    "MergePolicy",
    "make_policy",
]

#: Valid values of the ``consolidation`` knob (stitcher/scheduler/configs).
CONSOLIDATION_POLICIES = ("repack", "memo", "merge")


def make_policy(name: str) -> "ConsolidationPolicy":
    """Instantiate the policy registered under ``name``."""
    if name == "repack":
        return RepackPolicy()
    if name == "memo":
        return MemoPolicy()
    if name == "merge":
        return MergePolicy()
    raise ValueError(
        f"consolidation must be one of {CONSOLIDATION_POLICIES}, got {name!r}"
    )


class ConsolidationEngine:
    """Shared consolidation state and policy dispatch for one stitcher.

    The engine is the stitcher's consolidation half: it reads the live
    canvas list, the batch solver, and the victim budgets straight from
    its owner (they are one object split across two modules, not an
    abstraction boundary) and keeps everything only consolidation needs:
    the efficiency heap, the version stamps, the backoff, and the policy
    with its caches.

    Parameters
    ----------
    stitcher:
        The owning :class:`~repro.core.stitching.IncrementalStitcher`.
    policy:
        A policy name from :data:`CONSOLIDATION_POLICIES` or a
        ready-made :class:`ConsolidationPolicy` instance.
    retry_backoff:
        When true (the default, PR-2 behaviour) a failed attempt arms
        the linear backoff: the next attempt waits until the queue grew
        by the current failure streak.  ``False`` retries on every
        wasteful overflow — the configuration the consolidation A/B
        benchmark runs, where ``"memo"``'s stamp cache subsumes the
        crude growth gate (it retries exactly when a member canvas
        changed instead of guessing from queue growth).
    """

    def __init__(
        self,
        stitcher: "IncrementalStitcher",
        policy: str = "memo",
        retry_backoff: bool = True,
    ) -> None:
        self.stitcher = stitcher
        self.policy = policy if not isinstance(policy, str) else make_policy(policy)
        self.retry_backoff = retry_backoff
        #: Running min-heap of ``(efficiency, canvas_index, stamp)`` over
        #: the live non-oversized canvases.  Entries are invalidated
        #: lazily: a slot mutation bumps ``_stamps[slot]`` and pushes a
        #: fresh entry; stale entries are dropped when popped.  Slot
        #: deletions shift later indices and force a rebuild, exactly
        #: like the free-rectangle index.
        self._heap: List[Tuple[float, int, int]] = []
        self._stamps: List[int] = []
        #: Failed-attempt backoff state (probe bookkeeping only).
        self._failures = 0
        self._retry_size = 0
        self.stats: Dict[str, int] = {
            "attempts": 0,
            "trial_packs": 0,
            "capacity_rejects": 0,
            "unpairable_rejects": 0,
            "memo_rejects": 0,
            "merges_planned": 0,
            "merge_stalls": 0,
            "stall_predicted": 0,
        }

    # ------------------------------------------------------------- lifecycle
    def rebuild(self) -> None:
        """Re-seed heap and stamps from the stitcher's live canvas list
        and clear the backoff and every policy cache.  Called whenever
        the list itself was replaced or slots were deleted (adopting a
        re-pack, resetting the queue, a consolidating commit)."""
        canvases = self.stitcher._canvases
        self._stamps = [0] * len(canvases)
        heap = [
            (canvas.efficiency, index, 0)
            for index, canvas in enumerate(canvases)
            if not canvas.oversized
        ]
        heapq.heapify(heap)
        self._heap = heap
        self._failures = 0
        self._retry_size = 0
        self.policy.forget()

    def touch(self, index: int) -> None:
        """Record a mutation of canvas slot ``index``: invalidate its old
        heap entries and push one with the current efficiency.  (Memo
        signatures embed the stamp, so the same bump invalidates every
        cached verdict about the canvas.)"""
        if self.stitcher.repack_scope != "canvas":
            # Only consolidation reads the heap; don't grow it by one
            # tuple per arrival on configurations that never consult it.
            return
        stamps = self._stamps
        while len(stamps) <= index:
            stamps.append(0)
        stamps[index] += 1
        canvas = self.stitcher._canvases[index]
        if not canvas.oversized:
            heapq.heappush(self._heap, (canvas.efficiency, index, stamps[index]))

    # ----------------------------------------------------------------- probe
    def plan(self, patch: Patch) -> Optional["PlacementPlan"]:
        """Ask the policy for a consolidation plan for one wasteful
        overflow, honouring the backoff; ``None`` falls back to opening
        a new canvas.  Probes must not consume state: heap entries
        popped during planning are pushed back (stale ones are dropped
        for good)."""
        if self.retry_backoff and len(self.stitcher._patches) < self._retry_size:
            return None  # backing off: the queue has not grown enough
        self.stats["attempts"] += 1
        plan = self.policy.plan(self, patch)
        if plan is None:
            if self.retry_backoff:
                # Linear backoff: a queue that just refused to consolidate
                # will refuse again until it has changed, so retry only
                # after the queue grew by the current failure streak.
                self._failures += 1
                self._retry_size = len(self.stitcher._patches) + self._failures
        else:
            self._failures = 0
            self._retry_size = 0
        return plan

    # -------------------------------------------------------------- victims
    def select_victims(self, patch: Patch) -> Tuple[List[Patch], float, List[int]]:
        """Pop the victim set for one attempt off the efficiency heap.

        Victims come off the heap in ascending ``(efficiency,
        canvas_index)`` order — the same order the former per-overflow
        rescan-and-sort produced (pinned by ``tests/test_skyline.py``) —
        bounded by the stitcher's ``max_partial_victims`` and by
        ``effective_patch_budget`` pooled patches (the static
        ``partial_patch_budget`` unless adaptive budgets are on).  Stale
        heap entries are
        dropped for good; valid ones popped here are pushed back before
        returning, because a probe must not consume state.

        Returns ``(pool, pool_used, victim_indices)`` where ``pool`` is
        ``[patch] + victims' patches`` and ``pool_used`` the victims'
        total used area.
        """
        stitcher = self.stitcher
        heap = self._heap
        stamps = self._stamps
        canvases = stitcher._canvases
        budget = stitcher.effective_patch_budget
        pool: List[Patch] = [patch]
        pool_used = 0.0
        victim_indices: List[int] = []
        popped: List[Tuple[float, int, int]] = []
        while heap and len(victim_indices) < stitcher.max_partial_victims:
            if len(pool) >= budget:
                # Every canvas holds at least one patch, so no remaining
                # candidate can fit the budget — same decisions as
                # scanning on, minus the scan.
                break
            entry = heapq.heappop(heap)
            if entry[2] != stamps[entry[1]]:
                continue  # stale: the slot mutated after this was pushed
            popped.append(entry)
            canvas = canvases[entry[1]]
            if len(pool) + canvas.num_patches > budget:
                # This victim alone would blow the budget, but a later,
                # sparser candidate may still fit it.
                continue
            pool.extend(canvas.patches)
            pool_used += canvas.used_area
            victim_indices.append(entry[1])
        for entry in popped:
            heapq.heappush(heap, entry)
        return pool, pool_used, victim_indices

    def heap_entries(self) -> List[Tuple[float, int]]:
        """Read-only snapshot of the *valid* efficiency-heap entries as
        sorted ``(efficiency, canvas_index)`` pairs — the victim
        candidates the next attempt would see, in selection order.  The
        introspection surface the test suite pins heap behaviour
        through (instead of reaching into the private heap and stamp
        lists)."""
        stamps = self._stamps
        return sorted(
            (efficiency, index)
            for efficiency, index, stamp in self._heap
            if stamp == stamps[index]
        )

    def worst_slot(self) -> Optional[int]:
        """Slot of the least-efficient live non-oversized canvas, or
        ``None`` when no standard canvas exists.  Peeks the heap root
        (dropping stale entries for good) without consuming it."""
        heap = self._heap
        stamps = self._stamps
        while heap:
            entry = heap[0]
            if entry[2] != stamps[entry[1]]:
                heapq.heappop(heap)
                continue
            return entry[1]
        return None


def unpairable(patch: Patch, canvas_width: float, canvas_height: float) -> bool:
    """True when no two such patches can ever share one canvas.

    Two non-overlapping axis-aligned rectangles inside a ``W x H`` box
    must be separated along x (their widths sum to at most ``W``) or
    along y (heights sum to at most ``H``); a patch strictly wider than
    ``W/2`` *and* strictly taller than ``H/2`` rules out both with any
    partner of the same kind.  Counting these gives an exact lower bound
    on the canvases a pool needs.
    """
    return patch.width > 0.5 * canvas_width and patch.height > 0.5 * canvas_height


class ConsolidationPolicy:
    """Strategy interface: produce a consolidation plan or ``None``."""

    name = "abstract"

    def plan(self, engine: ConsolidationEngine, patch: Patch) -> Optional["PlacementPlan"]:
        raise NotImplementedError

    def forget(self) -> None:
        """Drop any cached state (canvas slots were renumbered)."""


class RepackPolicy(ConsolidationPolicy):
    """PR 2/3's from-scratch trial re-pack, extracted verbatim.

    The victim set is grown greedily over the least-efficient standard
    canvases (see :meth:`ConsolidationEngine.select_victims`) — so on a
    *small* queue the victims cover nearly everything and a partial
    re-pack approaches batch quality, while on a fleet-scale queue the
    work stays O(a few canvases).  The re-pack is adopted only when it
    *consolidates*: the replacement needs at most ``len(victims)``
    canvases, i.e. at least one canvas is saved over the ``"new"``
    alternative.  Returns ``None`` when no standard canvas exists, a
    necessary condition rules the pool out, or the trial re-pack does
    not consolidate (caller falls back to opening a new canvas) — so a
    partial re-pack never leaves the packing with more canvases — hence
    never lower mean canvas efficiency — than not re-packing at all.
    """

    name = "repack"

    def plan(self, engine: ConsolidationEngine, patch: Patch) -> Optional["PlacementPlan"]:
        pool, pool_used, victim_indices = engine.select_victims(patch)
        if not victim_indices:
            return None
        stitcher = engine.stitcher
        solver = stitcher.solver
        # Necessary condition for consolidation: the victims' combined
        # free space must at least hold the incoming patch.
        if len(victim_indices) * solver.canvas_area - pool_used < patch.area:
            engine.stats["capacity_rejects"] += 1
            return None
        # Second necessary condition (exact, dimension-aware): patches
        # wider than half the canvas and taller than half the canvas can
        # never pair up, so more of them than allowed canvases means the
        # trial pack must overflow.  O(pool), before any trial pack.
        canvas_w = solver.canvas_width
        canvas_h = solver.canvas_height
        bulky = sum(1 for p in pool if unpairable(p, canvas_w, canvas_h))
        if bulky > len(victim_indices):
            engine.stats["unpairable_rejects"] += 1
            return None
        return self._trial(engine, patch, pool, victim_indices)

    def _trial(
        self,
        engine: ConsolidationEngine,
        patch: Patch,
        pool: List[Patch],
        victim_indices: List[int],
    ) -> Optional["PlacementPlan"]:
        """Run the trial pack and build the ``"partial"`` plan."""
        from repro.core.stitching import PlacementPlan

        stitcher = engine.stitcher
        engine.stats["trial_packs"] += 1
        repacked = stitcher.solver.pack_within(pool, len(victim_indices))
        if repacked is None:
            return None
        delta = len(repacked) - len(victim_indices)
        return PlacementPlan(
            patch=patch,
            kind="partial",
            canvases_after=len(stitcher._canvases) + delta,
            equivalent_after=stitcher._equivalent + delta,
            repacked=repacked,
            victim_indices=victim_indices,
        )


class MemoPolicy(RepackPolicy):
    """``"repack"`` plus the victim-pool signature cache.

    A failed trial records the pool's signature — the victims' ``(slot,
    stamp)`` pairs — with the failed patch's footprint.  A later attempt
    on the *same unchanged pool* is rejected without a trial pack when
    its patch dominates a recorded failure in both dimensions (an
    equal-or-harder instance of a pack that already overflowed).  Any
    mutation of a member canvas bumps its stamp and thereby misses the
    cache; slot renumbering clears it via :meth:`forget`.

    The footprint check leans on the trial pack being monotone in the
    incoming patch's dimensions.  First-fit-decreasing is not *provably*
    monotone, so the equivalence suite pins memo decisions byte-identical
    to ``"repack"`` across randomized streams at depths 64-4096 (and the
    drift would be one extra ``"new"`` canvas, never a broken packing).
    """

    name = "memo"

    #: Cache size cap; on overflow the whole cache is dropped (signatures
    #: die fast anyway — any member mutation orphans them).
    max_entries = 4096
    #: Failed footprints kept per signature (minimal elements only).
    max_frontier = 8

    def __init__(self) -> None:
        self._failed: Dict[Tuple[Tuple[int, int], ...], List[Tuple[float, float]]] = {}

    def forget(self) -> None:
        self._failed.clear()

    def _trial(
        self,
        engine: ConsolidationEngine,
        patch: Patch,
        pool: List[Patch],
        victim_indices: List[int],
    ) -> Optional["PlacementPlan"]:
        stamps = engine._stamps
        signature = tuple((slot, stamps[slot]) for slot in victim_indices)
        frontier = self._failed.get(signature)
        if frontier is not None:
            patch_w = patch.width
            patch_h = patch.height
            for failed_w, failed_h in frontier:
                if patch_w >= failed_w and patch_h >= failed_h:
                    engine.stats["memo_rejects"] += 1
                    return None
        plan = super()._trial(engine, patch, pool, victim_indices)
        if plan is None:
            if frontier is None:
                if len(self._failed) >= self.max_entries:
                    self._failed.clear()
                frontier = self._failed[signature] = []
            self._record_failure(frontier, patch.width, patch.height)
        elif frontier is not None:
            # The commit will bump every victim's stamp anyway; dropping
            # the orphaned signature eagerly is just hygiene.
            del self._failed[signature]
        return plan

    def _record_failure(
        self, frontier: List[Tuple[float, float]], width: float, height: float
    ) -> None:
        """Keep the frontier minimal: drop footprints the new failure
        dominates (anything they would reject, it rejects too)."""
        frontier[:] = [(w, h) for w, h in frontier if not (w >= width and h >= height)]
        frontier.append((width, height))
        if len(frontier) > self.max_frontier:
            del frontier[0]


class MergePolicy(MemoPolicy):
    """Incremental consolidation by patch migration.

    A consolidation moment is exactly when the incoming patch fits no
    live free rectangle; the worst (least-efficient) canvas holds the
    most free space, just fragmented around its residents.  Instead of
    batch re-packing a whole victim pool, this policy *drains* the worst
    canvas: migrate residents into siblings' existing free rectangles,
    largest migratable resident first, until the remainder plus the
    incoming patch re-pack onto a single fresh canvas that replaces the
    victim slot.  Residents that fit no sibling simply stay (typically
    the founder patch, which opened the canvas precisely because it fit
    nowhere) — only enough room for the incoming patch must be freed.
    The canvas count is unchanged, one fewer than the ``"new"``
    alternative — the same saving an adopted trial re-pack banks, at
    O(residents) index probes plus one single-canvas mini re-pack
    instead of a from-scratch trial over a multi-victim pool.

    Plans against *clones*: each migration target is copied on first use
    and trial placements land on the copy, so the probe mutates nothing;
    the commit replays the recorded ``(slot, rect_index, patch)``
    sequence on the real canvases, which is exact because placement is
    deterministic and the clones started identical.  The first probe of
    each migration goes through the size-class index (exact global BSSF,
    excluding the victim); once any target holds trial placements the
    index is stale for it, so later probes fall back to the clone-aware
    linear scan.  When draining stalls, the policy falls back to the
    trial re-pack — through the ``"memo"`` signature cache (this class
    extends :class:`MemoPolicy`), so a pool that keeps stalling does not
    keep paying for the same failing trial pack either.
    """

    name = "merge"

    #: Gate for the drainable-area stall predictor; instance-overridable
    #: (the soundness tests compare predicted-doomed drains against the
    #: full clone-planned probe with the predictor off).
    use_stall_predictor = True

    def plan(self, engine: ConsolidationEngine, patch: Patch) -> Optional["PlacementPlan"]:
        merged = self._plan_merge(engine, patch)
        if merged is not None:
            engine.stats["merges_planned"] += 1
            return merged
        engine.stats["merge_stalls"] += 1
        return super().plan(engine, patch)

    def _probe_siblings(
        self,
        engine: ConsolidationEngine,
        canvases: List["Canvas"],
        clones: Dict[int, "Canvas"],
        worst: int,
        migrant: Patch,
    ) -> Optional[Tuple[int, int]]:
        """Best ``(canvas_index, rect_index)`` for ``migrant`` among the
        victim's siblings, seeing pending trial placements via clones.

        The first probe of each migration goes through whichever probe
        index the stitcher maintains (exact global BSSF, excluding the
        victim); once any target holds trial placements the indexes are
        stale for it, so later probes fall back to the clone-aware
        linear scan.
        """
        stitcher = engine.stitcher
        if not clones:
            exclude = frozenset((worst,))
            if stitcher._canvas_index is not None:
                fit = stitcher._canvas_index.best_fit(
                    migrant.width, migrant.height, exclude=exclude
                )
            elif stitcher._index is not None:
                fit = stitcher._index.best_fit(
                    migrant.width, migrant.height, exclude=exclude
                )
            else:
                fit = self._scan_siblings(canvases, clones, worst, migrant)
        else:
            fit = self._scan_siblings(canvases, clones, worst, migrant)
        if fit is None:
            return None
        return fit[0], fit[1]

    @staticmethod
    def _scan_siblings(
        canvases: List["Canvas"],
        clones: Dict[int, "Canvas"],
        worst: int,
        migrant: Patch,
    ) -> Optional[Tuple[int, int, float]]:
        """The clone-aware linear sibling scan (reference semantics)."""
        best: Optional[Tuple[float, int, int]] = None
        for canvas_index, canvas in enumerate(canvases):
            if canvas_index == worst or canvas.oversized:
                continue
            target = clones.get(canvas_index, canvas)
            fit = target.best_fit(migrant)
            if fit is not None:
                candidate = (fit[1], canvas_index, fit[0])
                if best is None or candidate < best:
                    best = candidate
        if best is None:
            return None
        return best[1], best[2], best[0]

    @staticmethod
    def drain_is_doomed(
        engine: ConsolidationEngine,
        patch: Patch,
        victim: "Canvas",
        canvases: List["Canvas"],
        worst: int,
    ) -> bool:
        """The drainable-area stall predictor: ``True`` when *no* drain
        of ``victim`` can ever make room for ``patch``, so the
        clone-planned probe is provably wasted work.

        A drain succeeds only when the un-migrated remainder plus the
        incoming patch re-pack onto one canvas, which at minimum
        requires draining ``need = victim_used + patch_area -
        canvas_area`` of resident area.  Two over-approximations bound
        what is drainable from the same capability summaries the
        admission index maintains (:func:`~repro.core.canvas_index.
        fit_profile`):

        * a resident can only migrate if it fits a sibling free
          rectangle at some drain step; every such rectangle is
          dominated dimension-wise by one of the sibling's *initial*
          candidates (placements only shrink free space, and any
          later candidate sits inside the start-of-drain free area a
          maximal initial candidate covers), so a resident taller/wider
          than the siblings' **aggregated fit profile** admits can
          never move;
        * total migrated area cannot exceed the siblings' **combined
          free area**.

        Both bounds are upper bounds on true drainability, so a
        rejection here is conservative: the full probe would have
        stalled too (pinned by the soundness tests — unlike the
        tempting per-victim max-free-extent pre-check PR 4 measured
        *unsound* for trial re-packs, which conjure new room; a drain
        migrates into *existing* sibling rectangles, which is what
        makes this bound exact-safe).

        The prediction must be cheaper than the drain probes it saves,
        so it only consults summaries that are already *maintained*:
        the aggregate is one vectorised reduction over the admission
        index's live rows and the free capacity is O(1) from the
        stitcher's drift bookkeeping.  Without the ``canvas_index``
        knob there is nothing maintained to consult — re-deriving
        profiles per attempt costs more than a stalling drain — so the
        predictor stands down and the drain probes decide as before.
        """
        stitcher = engine.stitcher
        index = stitcher._canvas_index
        if index is None or index.num_slots != len(canvases):
            return False  # no maintained summaries; let the probes decide
        need = victim.used_area + patch.area - stitcher.solver.canvas_area
        if need <= 0:
            return False  # the incoming patch may fit without any draining
        # Every standard canvas shares the solver's dimensions, so the
        # siblings' combined free area falls out of the drift totals.
        sibling_area = (stitcher._active_count - 1) * stitcher.solver.canvas_area
        sibling_free = sibling_area - (stitcher._active_used - victim.used_area)
        if sibling_free < need:
            return True  # not even the combined free area suffices
        aggregate = index.aggregate_profile(exclude=worst)
        drainable = 0.0
        for placement in victim.placements:
            resident = placement.patch
            if aggregate[height_class(resident.height)] >= resident.width:
                drainable += resident.area
        if drainable > sibling_free:
            drainable = sibling_free
        return drainable < need

    def _plan_merge(
        self, engine: ConsolidationEngine, patch: Patch
    ) -> Optional["PlacementPlan"]:
        from repro.core.stitching import PlacementPlan

        stitcher = engine.stitcher
        worst = engine.worst_slot()
        if worst is None:
            return None
        canvases = stitcher._canvases
        victim = canvases[worst]
        if victim.num_patches > stitcher.effective_patch_budget:
            # Bound the per-overflow migration work the same way the
            # repack path bounds its pooled patch count.
            return None
        if self.use_stall_predictor and self.drain_is_doomed(
            engine, patch, victim, canvases, worst
        ):
            # The drainable-area bound proves every drain of this victim
            # stalls; skip the clone-planned probes entirely (the caller
            # falls back to the memo-cached trial re-pack, exactly as a
            # probed stall would).
            engine.stats["stall_predicted"] += 1
            return None
        solver = stitcher.solver
        clones: Dict[int, "Canvas"] = {}
        migrations: List[Tuple[int, int, Patch]] = []
        remaining = [placement.patch for placement in victim.placements]
        remaining.sort(key=lambda p: p.area, reverse=True)
        remaining_area = victim.used_area
        replacement = None
        cursor = 0
        while True:
            if solver.canvas_area - remaining_area >= patch.area:
                # Enough area drained for the incoming patch to possibly
                # fit the remainder's re-pack; one bounded mini-trial
                # (aborts the moment a second canvas would open) decides.
                trial = solver.pack_within(remaining + [patch], 1)
                if trial is not None:
                    replacement = trial[0]
                    break
            # Drain the largest remaining resident that fits a sibling.
            # Sibling space only shrinks as migrations accumulate, so a
            # resident found unmigratable stays unmigratable: the cursor
            # never revisits it.
            target = None
            while cursor < len(remaining):
                migrant = remaining[cursor]
                target = self._probe_siblings(engine, canvases, clones, worst, migrant)
                if target is not None:
                    break
                cursor += 1  # unmigratable resident: it stays put
            if target is None:
                return None  # drained everything movable and still stuck
            canvas_index, rect_index = target
            clone = clones.get(canvas_index)
            if clone is None:
                clone = clones[canvas_index] = canvases[canvas_index].clone()
            clone.place(migrant, rect_index)
            migrations.append((canvas_index, rect_index, migrant))
            del remaining[cursor]
            remaining_area -= migrant.area
        return PlacementPlan(
            patch=patch,
            kind="merge",
            canvases_after=len(canvases),
            equivalent_after=stitcher._equivalent,
            repacked=[replacement],
            victim_indices=[worst],
            migrations=migrations,
        )
