"""Tier-1 (fault-free) tests for the fleet scenario wiring.

The fault matrix itself lives in ``tests/chaos`` behind ``RUN_CHAOS=1``;
here we pin the healthy path: full delivery, determinism, the workload's
purity, and watermark degradation under plain overload (no faults).
"""

from __future__ import annotations

import pytest

from repro.fleet import (
    FleetRunResult,
    FleetScenarioConfig,
    RetryPolicy,
    run_fleet_scenario,
)
from repro.workloads.fleet import (
    FleetWorkloadConfig,
    camera_ids,
    capture_times,
    make_patch,
    patch_dimensions,
)


def _small_config(**overrides):
    workload = overrides.pop(
        "workload", FleetWorkloadConfig(num_cameras=4, fps=4.0, duration_s=3.0)
    )
    defaults = dict(workload=workload, estimator_iterations=100)
    defaults.update(overrides)
    return FleetScenarioConfig(**defaults)


class TestWorkloadPurity:
    def test_patch_identity_is_a_pure_function(self):
        config = FleetWorkloadConfig()
        first = patch_dimensions(config, "cam-000", 3, 1)
        assert patch_dimensions(config, "cam-000", 3, 1) == first
        assert patch_dimensions(config, "cam-001", 3, 1) != first
        patch = make_patch(config, "cam-000", 3, 1, generation_time=2.5)
        assert (patch.width, patch.height) == first
        assert patch.deadline == pytest.approx(2.5 + config.slo)

    def test_capture_grid_is_phase_shifted_per_camera(self):
        config = FleetWorkloadConfig(num_cameras=3, fps=4.0, duration_s=2.0)
        grids = [capture_times(config, camera) for camera in camera_ids(config)]
        assert all(len(grid) == config.frames_per_camera for grid in grids)
        phases = {round(grid[0], 9) for grid in grids}
        assert len(phases) == 3  # distinct phases
        for grid in grids:
            deltas = [b - a for a, b in zip(grid, grid[1:])]
            assert deltas == pytest.approx([0.25] * (len(grid) - 1))

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            FleetWorkloadConfig(num_cameras=0)
        with pytest.raises(ValueError):
            FleetWorkloadConfig(fps=0.0)
        with pytest.raises(ValueError):
            FleetWorkloadConfig(min_patch=300.0, max_patch=200.0)


class TestResultAccounting:
    def test_empty_run_fractions_are_zero(self):
        empty = FleetRunResult(expected_base=0)
        assert empty.delivered_fraction == 0.0
        assert empty.injected_fault_fraction == 0.0
        assert empty.shed_expired_fraction == 0.0

    def test_derived_fractions_match_the_counter_arithmetic(self):
        # These fractions feed the bench robustness gates, so the exact
        # bucket arithmetic is pinned here against hand-computed values.
        result = FleetRunResult(
            expected_base=100,
            suppressed_base=10,
            failed_base=5,
            burst_sent=20,
            failed_burst=2,
            admitted_base=80,
            shed_scheduler_base=4,
            shed_scheduler_burst=1,
            ingest={
                "dropped_backpressure": 3,
                "expired_stale": 2,
                "expired_dead": 1,
                "shed_degraded": 4,
            },
        )
        assert result.delivered_base == 76
        assert result.delivered_fraction == pytest.approx(0.76)
        assert result.injected_fault_fraction == pytest.approx((10 + 5 + 2 + 20) / 120)
        assert result.shed_expired_fraction == pytest.approx(
            (3 + 2 + 1 + 4 + 4 + 1) / 120
        )


class TestFaultFreeScenario:
    def test_everything_delivered_and_counted(self):
        result = run_fleet_scenario(_small_config())
        assert result.delivered_fraction == pytest.approx(1.0)
        assert result.captured_base == result.expected_base
        assert result.suppressed_base == 0
        assert result.burst_sent == 0
        assert result.transfers["failed"] == 0
        assert result.ingest["admitted"] == result.expected_base
        assert result.completed_patches == result.expected_base
        assert result.errors == 0

    def test_two_runs_produce_identical_counters(self):
        config = _small_config()
        assert (
            run_fleet_scenario(config).counters()
            == run_fleet_scenario(config).counters()
        )

    def test_liveness_optional(self):
        result = run_fleet_scenario(_small_config(track_liveness=False))
        assert result.delivered_fraction == pytest.approx(1.0)
        assert result.liveness_transitions == {}

    def test_overload_degrades_through_watermarks_without_faults(self):
        # A starved uplink plus tight SLO overloads the pipeline with no
        # fault plan at all: the watermark machinery must shed/expire
        # instead of serving everything late.
        config = _small_config(
            workload=FleetWorkloadConfig(
                num_cameras=4, fps=6.0, duration_s=3.0, patches_per_frame=3, slo=0.3
            ),
            bandwidth_mbps=1.5,
            high_watermark=1,
            low_watermark=0,
            retry=RetryPolicy(max_attempts=1, attempt_timeout_s=None),
        )
        result = run_fleet_scenario(config)
        lost = (
            result.ingest["expired_stale"]
            + result.ingest["shed_degraded"]
            + result.ingest["dropped_backpressure"]
            + result.transfers["failed"]
        )
        assert lost > 0
        assert result.delivered_fraction < 1.0
        assert result.errors == 0
        # Degradation is accounted, not silent: every base patch is in
        # exactly one terminal bucket.
        assert result.delivered_base + result.suppressed_base <= result.expected_base
