"""Tests for the scene profiles and the synthetic scene generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.random_streams import RandomStreams
from repro.video.generator import SceneGenerator
from repro.video.scenes import PANDA4K_SCENES, all_scene_keys, get_scene


class TestSceneProfiles:
    def test_ten_scenes_defined(self):
        assert len(PANDA4K_SCENES) == 10
        assert all_scene_keys() == sorted(PANDA4K_SCENES)

    def test_lookup_by_index_and_key(self):
        assert get_scene(1).name == "University Canteen"
        assert get_scene("scene_10").name == "Huaqiangbei"

    def test_unknown_scene_raises(self):
        with pytest.raises(KeyError):
            get_scene("scene_99")

    def test_table1_roi_proportions_in_expected_range(self):
        # Table I: RoI proportions range from ~2.6% to ~14.2%.
        for profile in PANDA4K_SCENES.values():
            assert 0.02 <= profile.roi_area_fraction <= 0.15

    def test_train_eval_split_matches_paper(self):
        # The paper trains on the first 100 frames of each scene; the
        # evaluation frame counts are listed in Fig. 8's x-axis labels.
        expected_eval = {
            "scene_01": 134, "scene_02": 134, "scene_03": 134, "scene_04": 48,
            "scene_05": 33, "scene_06": 122, "scene_07": 80, "scene_08": 134,
            "scene_09": 134, "scene_10": 134,
        }
        for key, expected in expected_eval.items():
            profile = get_scene(key)
            assert profile.train_frames == 100
            assert profile.eval_frames == expected

    def test_mean_object_area_positive(self):
        for profile in PANDA4K_SCENES.values():
            assert profile.mean_object_area > 0

    def test_frame_dimensions_are_4k(self):
        for profile in PANDA4K_SCENES.values():
            assert profile.frame_width == 3840
            assert profile.frame_height == 2160


class TestSceneGenerator:
    def test_generates_requested_number_of_frames(self, scene01_frames):
        assert len(scene01_frames) == 20

    def test_frames_carry_scene_key_and_indices(self, scene01_frames):
        assert all(frame.scene_key == "scene_01" for frame in scene01_frames)
        assert [frame.frame_index for frame in scene01_frames] == list(range(20))

    def test_objects_within_frame_bounds(self, scene01_frames):
        for frame in scene01_frames:
            for obj in frame.objects:
                assert obj.box.x >= 0
                assert obj.box.y >= 0
                assert obj.box.x2 <= frame.width + 1e-6
                assert obj.box.y2 <= frame.height + 1e-6

    def test_roi_proportion_tracks_profile(self, scene01_frames):
        profile = get_scene("scene_01")
        mean_prop = np.mean([frame.roi_proportion for frame in scene01_frames])
        assert mean_prop == pytest.approx(profile.roi_area_fraction, rel=0.35)

    def test_sparser_scene_has_fewer_objects(self, scene01_frames, scene05_frames):
        dense = np.mean([frame.num_objects for frame in scene01_frames])
        sparse = np.mean([frame.num_objects for frame in scene05_frames])
        assert sparse < dense

    def test_same_seed_is_deterministic(self):
        a = SceneGenerator(get_scene("scene_02"), streams=RandomStreams(5)).generate(5)
        b = SceneGenerator(get_scene("scene_02"), streams=RandomStreams(5)).generate(5)
        for frame_a, frame_b in zip(a, b):
            assert frame_a.num_objects == frame_b.num_objects
            for obj_a, obj_b in zip(frame_a.objects, frame_b.objects):
                assert obj_a.box.as_tuple() == pytest.approx(obj_b.box.as_tuple())

    def test_different_seeds_differ(self):
        a = SceneGenerator(get_scene("scene_02"), streams=RandomStreams(5)).generate(5)
        b = SceneGenerator(get_scene("scene_02"), streams=RandomStreams(6)).generate(5)
        assert any(
            frame_a.num_objects != frame_b.num_objects
            or any(
                obj_a.box.as_tuple() != obj_b.box.as_tuple()
                for obj_a, obj_b in zip(frame_a.objects, frame_b.objects)
            )
            for frame_a, frame_b in zip(a, b)
        )

    def test_max_concurrent_objects_cap(self):
        generator = SceneGenerator(
            get_scene("scene_10"), streams=RandomStreams(2), max_concurrent_objects=40
        )
        frames = generator.generate(5)
        assert all(frame.num_objects <= 40 * 1.8 for frame in frames)

    def test_objects_move_between_frames(self, scene01_frames):
        motions = [obj.motion for frame in scene01_frames[1:] for obj in frame.objects]
        assert np.mean(motions) > 0.5

    def test_object_count_fluctuates(self, scene01_frames):
        counts = [frame.num_objects for frame in scene01_frames]
        assert max(counts) > min(counts)

    def test_start_index_offsets_frame_indices(self):
        generator = SceneGenerator(get_scene("scene_03"), streams=RandomStreams(4))
        frames = generator.generate(num_frames=3, start_index=100)
        assert [frame.frame_index for frame in frames] == [100, 101, 102]

    def test_negative_num_frames_rejected(self):
        generator = SceneGenerator(get_scene("scene_01"), streams=RandomStreams(1))
        with pytest.raises(ValueError):
            generator.generate(num_frames=-1)

    def test_contrast_within_unit_interval(self, scene01_frames):
        for frame in scene01_frames:
            for obj in frame.objects:
                assert 0.0 <= obj.contrast <= 1.0
