"""Tests for the discrete-event simulator."""

from __future__ import annotations

import pytest

from repro.simulation.engine import SimulationError, Simulator


def test_clock_starts_at_zero():
    simulator = Simulator()
    assert simulator.now == 0.0
    assert simulator.pending_events == 0


def test_schedule_in_and_run_advances_clock():
    simulator = Simulator()
    fired = []
    simulator.schedule_in(1.5, lambda sim: fired.append(sim.now))
    simulator.run()
    assert fired == [1.5]
    assert simulator.now == 1.5


def test_events_fire_in_time_order_regardless_of_scheduling_order():
    simulator = Simulator()
    order = []
    simulator.schedule_at(3.0, lambda sim: order.append("late"))
    simulator.schedule_at(1.0, lambda sim: order.append("early"))
    simulator.schedule_at(2.0, lambda sim: order.append("middle"))
    simulator.run()
    assert order == ["early", "middle", "late"]


def test_callback_can_schedule_more_events():
    simulator = Simulator()
    results = []

    def chain(sim: Simulator) -> None:
        results.append(sim.now)
        if sim.now < 3.0:
            sim.schedule_in(1.0, chain)

    simulator.schedule_at(1.0, chain)
    simulator.run()
    assert results == [1.0, 2.0, 3.0]


def test_scheduling_in_the_past_raises():
    simulator = Simulator()
    simulator.schedule_at(5.0, lambda sim: None)
    simulator.run()
    with pytest.raises(SimulationError):
        simulator.schedule_at(1.0, lambda sim: None)


def test_negative_delay_raises():
    simulator = Simulator()
    with pytest.raises(SimulationError):
        simulator.schedule_in(-1.0, lambda sim: None)


def test_run_until_stops_before_later_events():
    simulator = Simulator()
    fired = []
    simulator.schedule_at(1.0, lambda sim: fired.append(1.0))
    simulator.schedule_at(10.0, lambda sim: fired.append(10.0))
    simulator.run(until=5.0)
    assert fired == [1.0]
    assert simulator.now == 5.0
    assert simulator.pending_events == 1
    simulator.run()
    assert fired == [1.0, 10.0]


def test_run_with_max_events_budget():
    simulator = Simulator()
    fired = []
    for index in range(5):
        simulator.schedule_at(float(index + 1), lambda sim, i=index: fired.append(i))
    simulator.run(max_events=2)
    assert len(fired) == 2


def test_cancelled_event_does_not_fire():
    simulator = Simulator()
    fired = []
    event = simulator.schedule_at(1.0, lambda sim: fired.append("no"))
    simulator.schedule_at(2.0, lambda sim: fired.append("yes"))
    event.cancel()
    simulator.run()
    assert fired == ["yes"]


def test_trace_records_event_names():
    simulator = Simulator(trace=True)
    simulator.schedule_at(1.0, lambda sim: None, name="alpha")
    simulator.schedule_at(2.0, lambda sim: None, name="beta")
    simulator.run()
    assert simulator.trace_log == [(1.0, "alpha"), (2.0, "beta")]


def test_reset_clears_state():
    simulator = Simulator()
    simulator.schedule_at(1.0, lambda sim: None)
    simulator.run()
    simulator.reset()
    assert simulator.now == 0.0
    assert simulator.fired_events == 0
    assert simulator.pending_events == 0


def test_fired_events_counter():
    simulator = Simulator()
    for index in range(4):
        simulator.schedule_at(float(index), lambda sim: None)
    simulator.run()
    assert simulator.fired_events == 4


def test_negative_start_time_rejected():
    with pytest.raises(ValueError):
        Simulator(start_time=-1.0)
