"""Load-balancing policies over function instances (and shard workers).

The paper fronts its function instances with NGINX using the default
policy (round robin).  A least-connections policy is also provided because
it is the other policy practitioners commonly switch to, and the ablation
benchmarks compare the two.

The sharded fleet frontend (:mod:`repro.fleet.shard`) routes *cameras to
scheduler shards* through the same factory, which added the two
ownership-aware policies:

* ``"consistent_hash"`` -- a BLAKE2-based hash ring with virtual nodes,
  so a camera's owner is a pure function of ``(key, len(instances))``:
  stable across runs and machines (Python's ``hash`` is per-process
  salted, so it is deliberately not used), and adding/removing one shard
  only moves ~1/N of the keys;
* ``"least_loaded"`` -- assign to the target currently carrying the
  least ``load`` (falling back to ``outstanding`` for function
  instances), ties broken by position for determinism.

Every policy accepts an optional ``key=`` on :meth:`LoadBalancer.select`;
the classic policies ignore it, the consistent-hash ring requires it to
be the sticky routing identity (e.g. the camera id).
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from typing import Dict, Hashable, List, Optional, Protocol, Sequence, Tuple

from repro.serverless.function import FunctionInstance


def stable_hash(value: Hashable, salt: str = "") -> int:
    """A process-independent 64-bit hash (BLAKE2b over ``repr``)."""
    digest = hashlib.blake2b(
        f"{salt}:{value!r}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class LoadBalancer(Protocol):
    """Interface every balancing policy implements."""

    def select(
        self, instances: Sequence[FunctionInstance], key: Optional[Hashable] = None
    ) -> FunctionInstance:
        """Pick the instance the next invocation should be routed to.

        ``key`` is the sticky routing identity for ownership-aware
        policies; stateless policies ignore it.
        """
        ...


class RoundRobinBalancer:
    """NGINX's default policy: rotate through the upstream list."""

    def __init__(self) -> None:
        self._cursor = 0

    def select(
        self, instances: Sequence[FunctionInstance], key: Optional[Hashable] = None
    ) -> FunctionInstance:
        if not instances:
            raise ValueError("no instances available to balance across")
        instance = instances[self._cursor % len(instances)]
        self._cursor += 1
        return instance


class LeastConnectionsBalancer:
    """Route to the instance with the fewest outstanding invocations."""

    def select(
        self, instances: Sequence[FunctionInstance], key: Optional[Hashable] = None
    ) -> FunctionInstance:
        if not instances:
            raise ValueError("no instances available to balance across")
        return min(instances, key=lambda instance: instance.outstanding)


def _target_load(target, position: int) -> Tuple[float, int]:
    """Deterministic load key: ``load`` if the target exposes one (shard
    workers do), else ``outstanding`` (function instances), else 0."""
    load = getattr(target, "load", None)
    if load is None:
        load = getattr(target, "outstanding", 0)
    return (float(load), position)


class LeastLoadedBalancer:
    """Assign to the currently least-loaded target, first index on ties.

    Unlike :class:`LeastConnectionsBalancer` this understands the shard
    workers' aggregate ``load`` (ingest backlog + scheduler queue), and
    its tie-break is positional, so camera placement is deterministic
    even when every target is idle (the common state at registration
    time — the effect is then a balanced round-robin-by-count whenever
    the caller assigns sticky keys one at a time).
    """

    def select(
        self, instances: Sequence[FunctionInstance], key: Optional[Hashable] = None
    ) -> FunctionInstance:
        if not instances:
            raise ValueError("no instances available to balance across")
        index = min(
            range(len(instances)),
            key=lambda position: _target_load(instances[position], position),
        )
        return instances[index]


class ConsistentHashBalancer:
    """A consistent-hash ring over the target *positions*.

    Each of the ``len(instances)`` positions contributes ``replicas``
    virtual nodes; a key is routed to the first virtual node clockwise
    from its own hash.  Rings are cached per target count, so repeated
    selects are two hashes and a bisect.
    """

    def __init__(self, replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        self.replicas = replicas
        self._rings: Dict[int, Tuple[List[int], List[int]]] = {}
        self._fallback = 0

    def _ring(self, count: int) -> Tuple[List[int], List[int]]:
        if count not in self._rings:
            points = sorted(
                (stable_hash((position, replica), salt="ring"), position)
                for position in range(count)
                for replica in range(self.replicas)
            )
            self._rings[count] = (
                [point for point, _position in points],
                [position for _point, position in points],
            )
        return self._rings[count]

    def select(
        self, instances: Sequence[FunctionInstance], key: Optional[Hashable] = None
    ) -> FunctionInstance:
        if not instances:
            raise ValueError("no instances available to balance across")
        if key is None:
            # Keyless callers (the platform's instance pool) still get a
            # deterministic spread: hash an internal counter instead.
            key = ("__keyless__", self._fallback)
            self._fallback += 1
        points, positions = self._ring(len(instances))
        slot = bisect_left(points, stable_hash(key, salt="key"))
        if slot == len(points):
            slot = 0
        return instances[positions[slot]]


#: Policy names accepted by :func:`make_balancer`.
BALANCER_POLICIES = (
    "round_robin",
    "least_connections",
    "least_loaded",
    "consistent_hash",
)


def make_balancer(name: str) -> LoadBalancer:
    """Factory used by experiment configs (see :data:`BALANCER_POLICIES`)."""
    policies = {
        "round_robin": RoundRobinBalancer,
        "least_connections": LeastConnectionsBalancer,
        "least_loaded": LeastLoadedBalancer,
        "consistent_hash": ConsistentHashBalancer,
    }
    if name not in policies:
        raise KeyError(f"unknown load balancer {name!r}; valid: {sorted(policies)}")
    return policies[name]()
