"""Table I: redundancy in video inference data on the PANDA4K dataset.

Reproduces, per scene: the number of persons, the proportion of frame area
covered by RoIs, and the share of full-frame inference time attributable to
non-RoI pixels.  The paper reports RoI proportions between ~2.6% and
~14.2% and redundancy between ~9% and ~15%.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.pipeline.motivation import redundancy_table
from repro.video.scenes import get_scene


def test_table1_redundancy(benchmark, eval_frames_by_scene):
    rows = benchmark.pedantic(
        redundancy_table, args=(eval_frames_by_scene,), rounds=1, iterations=1
    )

    print()
    print(
        format_table(
            ["scene", "name", "#frames", "#persons", "RoI prop (%)", "non-RoI share (%)", "paper RoI prop (%)"],
            [
                [
                    row.scene_key,
                    row.scene_name,
                    row.num_frames,
                    row.num_persons,
                    100 * row.roi_proportion,
                    100 * row.non_roi_time_fraction,
                    100 * get_scene(row.scene_key).roi_area_fraction,
                ]
                for row in rows
            ],
            title="Table I -- redundancy in video inference data",
            float_format="{:.2f}",
        )
    )

    assert len(rows) == 10
    for row in rows:
        target = get_scene(row.scene_key).roi_area_fraction
        # The generated workload's RoI proportion tracks the paper's Table I
        # column within generous tolerance (scene dynamics are stochastic).
        assert row.roi_proportion == pytest.approx(target, rel=0.5)
        # RoIs cover well under a quarter of every scene: the redundancy
        # premise the paper builds on.
        assert row.roi_proportion < 0.25
        assert row.num_persons > 0
