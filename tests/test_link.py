"""Tests for the network link models."""

from __future__ import annotations

import pytest

from repro.network.link import NetworkLink, Uplink
from repro.simulation.engine import Simulator


class TestNetworkLink:
    def test_transfer_time_scales_with_size(self):
        link = NetworkLink(bandwidth_mbps=8.0, propagation_delay=0.0)
        assert link.transfer_time(1_000_000) == pytest.approx(1.0)
        assert link.transfer_time(2_000_000) == pytest.approx(2.0)

    def test_propagation_delay_added(self):
        link = NetworkLink(bandwidth_mbps=8.0, propagation_delay=0.01)
        assert link.transfer_time(0) == pytest.approx(0.01)

    def test_higher_bandwidth_is_faster(self):
        slow = NetworkLink(bandwidth_mbps=20.0, propagation_delay=0.0)
        fast = NetworkLink(bandwidth_mbps=80.0, propagation_delay=0.0)
        assert fast.transfer_time(1_000_000) < slow.transfer_time(1_000_000)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            NetworkLink(bandwidth_mbps=0.0)
        with pytest.raises(ValueError):
            NetworkLink(bandwidth_mbps=10.0, propagation_delay=-1.0)
        with pytest.raises(ValueError):
            NetworkLink(10.0).transfer_time(-5)

    def test_jitter_perturbs_but_preserves_scale(self):
        link = NetworkLink(bandwidth_mbps=8.0, propagation_delay=0.0, jitter_cv=0.1)
        times = [link.transfer_time(1_000_000) for _ in range(200)]
        assert min(times) != max(times)
        assert 0.7 < sum(times) / len(times) < 1.3


class TestUplink:
    def test_single_transmission_delivery_time(self):
        simulator = Simulator()
        uplink = Uplink(simulator, bandwidth_mbps=8.0, propagation_delay=0.0)
        delivered = []
        uplink.send(1_000_000, payload="frame", on_delivered=lambda r: delivered.append(r))
        simulator.run()
        assert len(delivered) == 1
        assert delivered[0].finish_time == pytest.approx(1.0)
        assert delivered[0].payload == "frame"

    def test_transmissions_queue_fifo(self):
        simulator = Simulator()
        uplink = Uplink(simulator, bandwidth_mbps=8.0, propagation_delay=0.0)
        finishes = []
        for _ in range(3):
            uplink.send(500_000, on_delivered=lambda r: finishes.append(r.finish_time))
        simulator.run()
        assert finishes == pytest.approx([0.5, 1.0, 1.5])

    def test_propagation_delay_delays_delivery_not_link_occupancy(self):
        simulator = Simulator()
        uplink = Uplink(simulator, bandwidth_mbps=8.0, propagation_delay=0.1)
        delivered_at = []
        uplink.send(500_000, on_delivered=lambda r: delivered_at.append(simulator.now))
        uplink.send(500_000, on_delivered=lambda r: delivered_at.append(simulator.now))
        simulator.run()
        # Serialisation finishes at 0.5 and 1.0; delivery 0.1 later.
        assert delivered_at == pytest.approx([0.6, 1.1])

    def test_total_bytes_and_records(self):
        simulator = Simulator()
        uplink = Uplink(simulator, bandwidth_mbps=10.0)
        uplink.send(1000)
        uplink.send(2000)
        simulator.run()
        assert uplink.total_bytes == 3000
        assert len(uplink.records) == 2
        assert all(record.queueing_delay >= 0 for record in uplink.records)

    def test_queueing_delay_recorded(self):
        simulator = Simulator()
        uplink = Uplink(simulator, bandwidth_mbps=8.0, propagation_delay=0.0)
        uplink.send(1_000_000)
        uplink.send(1_000_000)
        simulator.run()
        assert uplink.records[0].queueing_delay == pytest.approx(0.0)
        assert uplink.records[1].queueing_delay == pytest.approx(1.0)

    def test_invalid_parameters_rejected(self):
        simulator = Simulator()
        with pytest.raises(ValueError):
            Uplink(simulator, bandwidth_mbps=0.0)
        uplink = Uplink(simulator, bandwidth_mbps=10.0)
        with pytest.raises(ValueError):
            uplink.send(-1)
