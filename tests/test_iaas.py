"""Tests for the statically provisioned IaaS GPU server (Fig. 2(b) substrate)."""

from __future__ import annotations

import pytest

from repro.serverless.iaas import IaaSGPUServer
from repro.simulation.engine import Simulator
from repro.simulation.random_streams import RandomStreams


def test_single_request_latency_close_to_service_time():
    simulator = Simulator()
    server = IaaSGPUServer(simulator, streams=RandomStreams(0))
    server.submit_roi_batch("camera-0", num_rois=50, total_pixels=0.4e6)
    simulator.run()
    assert len(server.records) == 1
    assert 0.02 < server.records[0].latency < 0.12


def test_empty_batch_is_ignored():
    simulator = Simulator()
    server = IaaSGPUServer(simulator, streams=RandomStreams(0))
    server.submit_roi_batch("camera-0", num_rois=0, total_pixels=0.0)
    simulator.run()
    assert server.records == []


def test_latency_grows_under_contention():
    """The core Fig. 2(b) effect: more concurrent cameras, longer waits."""

    def mean_latency(num_requests: int) -> float:
        simulator = Simulator()
        server = IaaSGPUServer(simulator, streams=RandomStreams(1))
        for _ in range(num_requests):
            server.submit_roi_batch("camera", num_rois=80, total_pixels=0.5e6)
        simulator.run()
        return server.mean_latency

    assert mean_latency(10) > mean_latency(1) * 2


def test_more_gpus_reduce_queueing():
    def run(num_gpus: int) -> float:
        simulator = Simulator()
        server = IaaSGPUServer(simulator, num_gpus=num_gpus, streams=RandomStreams(2))
        for _ in range(8):
            server.submit_roi_batch("camera", num_rois=80, total_pixels=0.5e6)
        simulator.run()
        return server.mean_latency

    assert run(2) < run(1)


def test_rental_cost_scales_with_time():
    simulator = Simulator()
    server = IaaSGPUServer(simulator, hourly_cost=3.6)
    assert server.rental_cost(3600) == pytest.approx(3.6)
    assert server.rental_cost(1800) == pytest.approx(1.8)
    with pytest.raises(ValueError):
        server.rental_cost(-1)


def test_mean_latency_of_empty_server_is_zero():
    simulator = Simulator()
    server = IaaSGPUServer(simulator)
    assert server.mean_latency == 0.0
    assert server.mean_latency_ms == 0.0


def test_invalid_gpu_count_rejected():
    with pytest.raises(ValueError):
        IaaSGPUServer(Simulator(), num_gpus=0)
