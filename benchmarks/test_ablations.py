"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's figures and quantify the contribution of
individual design decisions:

* **Stitching order** -- packing patches in decreasing-area order
  (first-fit-decreasing) vs. arrival order.
* **Slack conservatism** -- the sigma multiplier in the latency estimator
  trades SLO violations against cost (the paper suggests raising it for
  SLO-critical deployments).
* **Canvas size** -- smaller canvases waste less area per canvas but pay
  more per-canvas overheads.
* **Zone granularity** -- the end-to-end bandwidth/accuracy knob.
"""

from __future__ import annotations


from repro.analysis.tables import format_table
from repro.core.latency import LatencyEstimator
from repro.core.partitioning import FramePartitioner
from repro.core.scheduler import TangramScheduler
from repro.core.stitching import PatchStitchingSolver
from repro.pipeline.endtoend import EndToEndConfig, run_end_to_end
from repro.serverless.platform import ServerlessPlatform
from repro.simulation.engine import Simulator
from repro.simulation.random_streams import RandomStreams
from repro.vision.detector import DetectorLatencyModel
from repro.vision.roi_extractors import make_extractor


def _frame_patches(eval_frames_by_scene, zones=4, limit=12):
    partitioner = FramePartitioner(
        zones_x=zones, zones_y=zones,
        roi_extractor=make_extractor("gmm", streams=RandomStreams(3)),
    )
    patches = []
    for frame in eval_frames_by_scene["scene_01"][:limit]:
        patches.extend(partitioner.partition(frame, generation_time=frame.timestamp, slo=1.0))
    return patches


def test_ablation_stitching_order(benchmark, eval_frames_by_scene):
    """First-fit-decreasing vs. arrival-order packing."""
    patches = _frame_patches(eval_frames_by_scene)

    def run():
        sorted_solver = PatchStitchingSolver(sort_patches=True)
        arrival_solver = PatchStitchingSolver(sort_patches=False)
        return len(sorted_solver.pack(patches)), len(arrival_solver.pack(patches))

    sorted_count, arrival_count = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["packing order", "canvases used"],
            [["decreasing area (default)", sorted_count], ["arrival order", arrival_count]],
            title="Ablation -- stitching order",
        )
    )
    assert sorted_count <= arrival_count


def test_ablation_sigma_multiplier(benchmark, eval_frames_by_scene):
    """Raising the slack multiplier trades cost for fewer violations."""
    patches = _frame_patches(eval_frames_by_scene, limit=10)

    def run_with_sigma(multiplier: float):
        simulator = Simulator()
        platform = ServerlessPlatform(simulator, cold_start_time=0.0)
        latency_model = DetectorLatencyModel.serverless()
        scheduler = TangramScheduler(
            simulator,
            platform,
            estimator=LatencyEstimator(
                latency_model=latency_model, iterations=150,
                sigma_multiplier=multiplier, streams=RandomStreams(int(multiplier * 10)),
            ),
            latency_model=latency_model,
            streams=RandomStreams(55),
        )
        arrival = 0.0
        for patch in patches:
            arrival += 0.02
            simulator.schedule_at(
                arrival, lambda sim, p=patch: scheduler.receive_patch(
                    type(p)(
                        camera_id=p.camera_id, frame_index=p.frame_index, region=p.region,
                        generation_time=sim.now, slo=1.0, scene_key=p.scene_key,
                        objects=p.objects,
                    )
                )
            )
        simulator.run()
        scheduler.flush()
        simulator.run()
        return scheduler.slo_violation_rate, scheduler.total_cost

    def run():
        return {sigma: run_with_sigma(sigma) for sigma in (0.0, 3.0, 6.0)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["sigma multiplier", "violation rate", "cost ($)"],
            [[sigma, violation, cost] for sigma, (violation, cost) in sorted(results.items())],
            title="Ablation -- latency-estimator conservatism",
            float_format="{:.4f}",
        )
    )
    # More conservative slack never increases the violation rate.
    assert results[6.0][0] <= results[0.0][0] + 1e-9
    assert results[3.0][0] <= 0.05


def test_ablation_canvas_size(benchmark, camera_traces):
    """Canvas size: the paper fixes 1024; smaller/larger canvases shift the
    overhead/efficiency balance."""

    def run():
        out = {}
        for canvas in (640.0, 1024.0, 1536.0):
            config = EndToEndConfig(
                strategy="tangram", bandwidth_mbps=40.0, slo=1.0, canvas_size=canvas
            )
            result = run_end_to_end(config, camera_traces, streams=RandomStreams(60))
            out[canvas] = (result.total_cost, result.mean_canvas_efficiency,
                           result.slo_violation_rate)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["canvas size", "cost ($)", "canvas efficiency", "violation rate"],
            [[f"{int(c)}x{int(c)}", *values] for c, values in sorted(results.items())],
            title="Ablation -- canvas size",
            float_format="{:.4f}",
        )
    )
    for cost, efficiency, violation in results.values():
        assert cost > 0
        assert 0.0 < efficiency <= 1.0
        assert violation <= 0.25


def test_ablation_zone_granularity_end_to_end(benchmark, camera_traces):
    """Zone granularity trades uplink bytes against patches/overheads."""

    def run():
        out = {}
        for zones in (2, 4, 6):
            config = EndToEndConfig(
                strategy="tangram", bandwidth_mbps=40.0, slo=1.0,
                zones_x=zones, zones_y=zones,
            )
            result = run_end_to_end(config, camera_traces, streams=RandomStreams(61))
            out[zones] = (result.total_uploaded_bytes / 1e6, result.total_cost,
                          result.slo_violation_rate)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["zones", "uploaded (MB)", "cost ($)", "violation rate"],
            [[f"{z}x{z}", *values] for z, values in sorted(results.items())],
            title="Ablation -- partition granularity, end to end",
            float_format="{:.4f}",
        )
    )
    uploads = {zones: values[0] for zones, values in results.items()}
    # Finer partitioning uploads fewer bytes (Table II, now end to end).
    assert uploads[6] <= uploads[2] + 1e-6
    # SLO compliance holds across granularities.
    assert all(values[2] <= 0.10 for values in results.values())
