"""Algorithm 1: adaptive frame partitioning.

The frame is divided evenly into ``X x Y`` zones.  Every RoI produced by the
background model is affiliated with the zone it overlaps most; each
non-empty zone is then shrunk to the minimum enclosing rectangle of its
RoIs and cut out as a patch.  The partition granularity ``(X, Y)`` is the
knob trading bandwidth against accuracy (Table II vs. Table III): finer
zones hug the RoIs more tightly (less background transmitted) but are more
likely to cut off objects the background model missed between zones.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.core.patches import Patch
from repro.video.frames import Frame, GroundTruthObject
from repro.video.geometry import Box, enclosing_box
from repro.vision.roi_extractors import AnalyticRoIExtractor


def make_zones(frame_width: float, frame_height: float, zones_x: int, zones_y: int) -> List[Box]:
    """Divide the frame evenly into ``zones_x * zones_y`` zone rectangles.

    Zones are listed row-major (left-to-right, top-to-bottom).
    """
    if zones_x < 1 or zones_y < 1:
        raise ValueError("zone counts must be at least 1")
    if frame_width <= 0 or frame_height <= 0:
        raise ValueError("frame dimensions must be positive")
    zone_width = frame_width / zones_x
    zone_height = frame_height / zones_y
    zones: List[Box] = []
    for row in range(zones_y):
        for col in range(zones_x):
            zones.append(
                Box(col * zone_width, row * zone_height, zone_width, zone_height)
            )
    return zones


def partition_rois(
    frame_width: float,
    frame_height: float,
    zones_x: int,
    zones_y: int,
    rois: Sequence[Box],
) -> List[Box]:
    """Algorithm 1: turn RoIs into per-zone patch rectangles.

    Steps (paper numbering):

    1. the frame is divided into ``zones_x * zones_y`` equal zones;
    2. every RoI is assigned to the zone with which it shares the largest
       overlap area (RoIs with no overlap at all are skipped -- they lie
       outside the frame);
    3. each non-empty zone is resized to the minimum enclosing rectangle of
       its assigned RoIs;
    4. the resized zones are returned as patch rectangles, clipped to the
       frame bounds.

    Note that the enclosing rectangle may extend beyond the original zone
    when an RoI straddles a zone boundary; the paper resizes to cover all
    affiliated RoIs, which is what keeps boundary objects intact.
    """
    zones = make_zones(frame_width, frame_height, zones_x, zones_y)
    assignments: List[List[Box]] = [[] for _ in zones]
    for roi in rois:
        if roi.is_empty():
            continue
        best_zone = -1
        best_overlap = 0.0
        for index, zone in enumerate(zones):
            overlap = roi.intersection_area(zone)
            if overlap > best_overlap:
                best_overlap = overlap
                best_zone = index
        if best_zone >= 0:
            assignments[best_zone].append(roi)

    patches: List[Box] = []
    for zone_rois in assignments:
        if not zone_rois:
            continue
        enclosing = enclosing_box(zone_rois)
        clipped = enclosing.clip_to(frame_width, frame_height)
        if clipped is not None and not clipped.is_empty():
            patches.append(clipped)
    return patches


class FramePartitioner:
    """Edge-side component wrapping RoI extraction plus Algorithm 1.

    Parameters
    ----------
    zones_x, zones_y:
        Partition granularity (the paper's main configuration is 4 x 4).
    roi_extractor:
        Either an :class:`~repro.vision.roi_extractors.AnalyticRoIExtractor`
        or any callable ``frame -> list[Box]``; defaults must be supplied
        by the caller so the extraction method stays an explicit choice
        (Table IV compares several).
    object_coverage_threshold:
        Minimum fraction of a ground-truth object's area that must fall
        inside a patch for the object to be considered "carried" by that
        patch (used to annotate patches for downstream accuracy scoring).
    min_patch_area:
        Patches smaller than this many pixels are dropped as noise (they
        come from false-positive RoIs).
    """

    def __init__(
        self,
        zones_x: int = 4,
        zones_y: int = 4,
        roi_extractor: Optional[
            AnalyticRoIExtractor | Callable[[Frame], List[Box]]
        ] = None,
        object_coverage_threshold: float = 0.5,
        min_patch_area: float = 256.0,
    ) -> None:
        if roi_extractor is None:
            raise ValueError("roi_extractor must be provided")
        if not 0 < object_coverage_threshold <= 1:
            raise ValueError("object_coverage_threshold must be in (0, 1]")
        self.zones_x = zones_x
        self.zones_y = zones_y
        self.roi_extractor = roi_extractor
        self.object_coverage_threshold = object_coverage_threshold
        self.min_patch_area = min_patch_area

    # -------------------------------------------------------------- extraction
    def extract_rois(self, frame: Frame) -> List[Box]:
        """Run the configured RoI extractor on ``frame``."""
        if isinstance(self.roi_extractor, AnalyticRoIExtractor):
            return self.roi_extractor.extract(frame)
        return self.roi_extractor(frame)

    # ------------------------------------------------------------------ cover
    def _objects_in_region(
        self, frame: Frame, region: Box
    ) -> List[GroundTruthObject]:
        carried: List[GroundTruthObject] = []
        for obj in frame.objects:
            if obj.box.area <= 0:
                continue
            coverage = obj.box.intersection_area(region) / obj.box.area
            if coverage >= self.object_coverage_threshold:
                carried.append(obj)
        return carried

    # -------------------------------------------------------------- partition
    def partition(
        self,
        frame: Frame,
        generation_time: float,
        slo: float,
        camera_id: str = "camera-0",
        rois: Optional[Sequence[Box]] = None,
    ) -> List[Patch]:
        """Produce the patches for one frame.

        ``rois`` lets callers supply pre-computed RoIs (e.g. from the
        pixel-level GMM); otherwise the configured extractor runs.
        """
        extracted = list(rois) if rois is not None else self.extract_rois(frame)
        regions = partition_rois(
            frame.width, frame.height, self.zones_x, self.zones_y, extracted
        )
        patches: List[Patch] = []
        for region in regions:
            if region.area < self.min_patch_area:
                continue
            patches.append(
                Patch(
                    camera_id=camera_id,
                    frame_index=frame.frame_index,
                    region=region,
                    generation_time=generation_time,
                    slo=slo,
                    scene_key=frame.scene_key,
                    objects=tuple(self._objects_in_region(frame, region)),
                )
            )
        return patches

    def partition_area(self, frame: Frame, rois: Optional[Sequence[Box]] = None) -> float:
        """Total pixel area of the patches for ``frame`` (bandwidth studies)."""
        extracted = list(rois) if rois is not None else self.extract_rois(frame)
        regions = partition_rois(
            frame.width, frame.height, self.zones_x, self.zones_y, extracted
        )
        return sum(region.area for region in regions if region.area >= self.min_patch_area)
