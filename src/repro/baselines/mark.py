"""MArk-style batching: a batch-size target plus a timeout.

MArk accumulates requests until either the batch-size target is reached or
a timeout has elapsed since the first request in the batch arrived, then
invokes.  Like Clipper, it serves fixed-shape inputs, so each patch is
padded/resized to the model input size.  The paper notes that MArk needs
its timeout tuned per bandwidth setting; the workload configs expose that
knob.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.patches import Patch
from repro.core.scheduler import BaseScheduler
from repro.core.stitching import Canvas
from repro.serverless.platform import ServerlessPlatform
from repro.simulation.engine import Simulator
from repro.simulation.events import Event
from repro.simulation.random_streams import RandomStreams
from repro.vision.detector import DetectorLatencyModel


class MArkScheduler(BaseScheduler):
    """Batch-size + timeout batching over fixed-size inference inputs."""

    def __init__(
        self,
        simulator: Simulator,
        platform: ServerlessPlatform,
        latency_model: Optional[DetectorLatencyModel] = None,
        input_size: float = 640.0,
        batch_size: int = 8,
        timeout: float = 0.25,
        streams: Optional[RandomStreams] = None,
    ) -> None:
        super().__init__(
            simulator,
            platform,
            latency_model,
            streams=streams or RandomStreams(31),
            name="mark",
        )
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        if input_size <= 0:
            raise ValueError("input_size must be positive")
        self.input_size = input_size
        self.batch_size = batch_size
        self.timeout = timeout
        self._queue: List[Patch] = []
        self._timer: Optional[Event] = None

    # ---------------------------------------------------------------- arrival
    def receive_patch(self, patch: Patch) -> None:
        self._queue.append(patch)
        if len(self._queue) >= self.batch_size:
            self._dispatch()
        elif self._timer is None:
            # The timeout window opens when the first request of the batch
            # arrives.
            self._timer = self.simulator.schedule_in(
                self.timeout, lambda _sim: self._dispatch(), name="mark:timeout"
            )

    # --------------------------------------------------------------- dispatch
    def _build_inputs(self, patches: List[Patch]) -> List[Canvas]:
        inputs: List[Canvas] = []
        for patch in patches:
            canvas = Canvas(
                width=self.input_size, height=self.input_size, canvas_id=patch.patch_id
            )
            if canvas.try_place(patch) is None:
                canvas = Canvas(
                    width=max(self.input_size, patch.width),
                    height=max(self.input_size, patch.height),
                    canvas_id=patch.patch_id,
                    oversized=True,
                )
                canvas.try_place(patch)
            inputs.append(canvas)
        return inputs

    def _dispatch(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._queue:
            return
        batch = self._queue[: self.batch_size]
        self._queue = self._queue[self.batch_size:]
        self.invoke_canvases(self._build_inputs(batch))
        if self._queue:
            self._timer = self.simulator.schedule_in(
                self.timeout, lambda _sim: self._dispatch(), name="mark:timeout"
            )

    # ------------------------------------------------------------------ flush
    def flush(self) -> None:
        while self._queue:
            self._dispatch()
