"""Stauffer-Grimson adaptive Gaussian mixture background subtraction.

This is a from-scratch, vectorised numpy implementation of the classic
per-pixel mixture-of-Gaussians background model (Stauffer & Grimson, CVPR
1999), the algorithm behind OpenCV's ``BackgroundSubtractorMOG2`` that the
paper runs on the Jetson edge device.

Every pixel maintains ``num_gaussians`` components ``(weight, mean, var)``.
For each new frame:

1. a pixel matches a component when the intensity lies within
   ``match_threshold`` standard deviations of its mean;
2. matched components are updated toward the observation with learning
   rate ``learning_rate``; unmatched component weights decay;
3. if no component matches, the weakest component is replaced by a new one
   centred on the observation with a large variance;
4. components are ranked by ``weight / sigma``; the highest-ranked
   components whose cumulative weight exceeds ``background_ratio`` form the
   background model, and a pixel is foreground when its matched component
   is not among them (or when nothing matched).

The module also provides :func:`mask_to_boxes`, which turns the binary
foreground mask into RoI bounding boxes via connected-component labelling,
the step the paper performs before Algorithm 1.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np
from scipy import ndimage

from repro.video.geometry import Box, merge_overlapping

#: 8-connected structuring element shared by dilation and labelling; built
#: once at import instead of per :func:`mask_to_boxes` call.
_STRUCTURE_8: np.ndarray = np.ones((3, 3), dtype=bool)


class GaussianMixtureBackgroundSubtractor:
    """Adaptive per-pixel mixture-of-Gaussians background model.

    Parameters
    ----------
    num_gaussians:
        Number of mixture components per pixel (the classic paper uses 3-5).
    learning_rate:
        Alpha in Stauffer-Grimson; controls how quickly the background
        adapts.  Higher values absorb stationary objects faster.
    match_threshold:
        Match distance in standard deviations (2.5 in the original paper).
    background_ratio:
        Minimum cumulative weight of components considered background.
    initial_variance:
        Variance assigned to newly created components.
    min_variance:
        Lower bound on component variance to keep matching stable.
    """

    def __init__(
        self,
        num_gaussians: int = 3,
        learning_rate: float = 0.02,
        match_threshold: float = 2.5,
        background_ratio: float = 0.8,
        initial_variance: float = 225.0,
        min_variance: float = 4.0,
    ) -> None:
        if num_gaussians < 1:
            raise ValueError("num_gaussians must be at least 1")
        if not 0 < learning_rate <= 1:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0 < background_ratio <= 1:
            raise ValueError("background_ratio must be in (0, 1]")
        self.num_gaussians = num_gaussians
        self.learning_rate = learning_rate
        self.match_threshold = match_threshold
        self.background_ratio = background_ratio
        self.initial_variance = initial_variance
        self.min_variance = min_variance
        self._weights: Optional[np.ndarray] = None  # (K, H, W)
        self._means: Optional[np.ndarray] = None
        self._variances: Optional[np.ndarray] = None
        #: Reusable per-frame work buffers, allocated once in
        #: :meth:`_initialise`; :meth:`apply` runs almost entirely with
        #: in-place ufuncs (``out=`` / ``where=``) instead of rebuilding
        #: ~15 ``(K, H, W)`` temporaries per frame.
        self._buffers: Dict[str, np.ndarray] = {}
        self.frames_seen = 0

    # ------------------------------------------------------------------ state
    @property
    def is_initialised(self) -> bool:
        return self._weights is not None

    def _initialise(self, frame: np.ndarray) -> None:
        height, width = frame.shape
        k = self.num_gaussians
        self._weights = np.zeros((k, height, width), dtype=np.float32)
        self._means = np.zeros((k, height, width), dtype=np.float32)
        self._variances = np.full(
            (k, height, width), self.initial_variance, dtype=np.float32
        )
        # Seed the first component with the first frame.
        self._weights[0] = 1.0
        self._means[0] = frame
        shape = (k, height, width)
        self._buffers = {
            "sigma": np.empty(shape, dtype=np.float32),
            "diff": np.empty(shape, dtype=np.float32),
            "work": np.empty(shape, dtype=np.float32),
            "rank": np.empty(shape, dtype=np.float32),
            "matches": np.empty(shape, dtype=bool),
            "bool_work": np.empty(shape, dtype=bool),
            "is_best": np.empty(shape, dtype=bool),
            "bg_sorted": np.empty(shape, dtype=bool),
            "bg_flags": np.empty(shape, dtype=bool),
            "best": np.empty((height, width), dtype=np.intp),
            "weakest": np.empty((height, width), dtype=np.intp),
            "any_match": np.empty((height, width), dtype=bool),
            "no_match": np.empty((height, width), dtype=bool),
            "weight_sum": np.empty((height, width), dtype=np.float32),
            "k_index": np.arange(k, dtype=np.intp).reshape(k, 1, 1),
        }

    # ------------------------------------------------------------------ apply
    def apply(self, frame: np.ndarray) -> np.ndarray:
        """Update the model with ``frame`` and return the foreground mask.

        Parameters
        ----------
        frame:
            Grayscale image, shape ``(H, W)``, values in [0, 255].

        Returns
        -------
        numpy.ndarray
            Boolean mask of foreground pixels, shape ``(H, W)``.
        """
        frame = np.asarray(frame, dtype=np.float32)
        if frame.ndim != 2:
            raise ValueError(f"expected a grayscale (H, W) frame, got {frame.shape}")
        if not self.is_initialised:
            self._initialise(frame)
            self.frames_seen = 1
            return np.zeros(frame.shape, dtype=bool)

        weights = self._weights
        means = self._means
        variances = self._variances
        assert weights is not None and means is not None and variances is not None
        buf = self._buffers
        sigma = buf["sigma"]
        diff = buf["diff"]
        work = buf["work"]
        rank = buf["rank"]
        matches = buf["matches"]
        bool_work = buf["bool_work"]
        is_best = buf["is_best"]
        best = buf["best"]
        any_match = buf["any_match"]
        no_match = buf["no_match"]
        k_index = buf["k_index"]
        frame_k = frame[None, :, :]

        np.sqrt(variances, out=sigma)
        np.subtract(frame_k, means, out=diff)
        np.abs(diff, out=work)  # |frame - mean|
        np.multiply(sigma, self.match_threshold, out=rank)  # rank as scratch
        np.less_equal(work, rank, out=matches)  # (K, H, W)

        # Only the best-matching (highest weight/sigma among matching)
        # component is updated, per the original formulation.
        np.maximum(sigma, 1e-6, out=sigma)
        np.divide(weights, sigma, out=rank)
        np.logical_not(matches, out=bool_work)
        np.copyto(rank, -np.inf, where=bool_work)
        np.argmax(rank, axis=0, out=best)  # (H, W)
        np.any(matches, axis=0, out=any_match)

        np.equal(k_index, best[None, :, :], out=is_best)
        np.logical_and(is_best, any_match[None, :, :], out=is_best)

        alpha = self.learning_rate
        # Weight update: w <- (1 - alpha) w + alpha * ownership.
        weights *= 1.0 - alpha
        np.add(weights, alpha, out=weights, where=is_best)

        # Mean / variance update for the owning component.
        rho = alpha  # The standard simplification rho = alpha.
        np.multiply(diff, rho, out=work)
        np.add(means, work, out=means, where=is_best)
        np.multiply(diff, diff, out=work)
        np.subtract(work, variances, out=work)
        np.multiply(work, rho, out=work)
        np.add(variances, work, out=variances, where=is_best)
        np.maximum(variances, self.min_variance, out=variances)

        # Replace the weakest component where nothing matched.
        np.logical_not(any_match, out=no_match)
        if np.any(no_match):
            weakest = buf["weakest"]
            np.argmin(weights, axis=0, out=weakest)
            replace = is_best  # is_best is dead from here on; reuse it
            np.equal(k_index, weakest[None, :, :], out=replace)
            np.logical_and(replace, no_match[None, :, :], out=replace)
            np.copyto(means, frame_k, where=replace)
            np.copyto(variances, self.initial_variance, where=replace)
            np.copyto(weights, 0.05, where=replace)

        # Renormalise weights.
        weight_sum = buf["weight_sum"]
        np.sum(weights, axis=0, out=weight_sum)
        np.maximum(weight_sum, 1e-6, out=weight_sum)
        np.divide(weights, weight_sum[None, :, :], out=weights)

        # Determine which components form the background (rank by
        # weight / sigma, descending).
        np.sqrt(variances, out=sigma)
        np.maximum(sigma, 1e-6, out=sigma)
        np.divide(weights, sigma, out=rank)
        np.negative(rank, out=rank)
        order = np.argsort(rank, axis=0)
        sorted_weights = np.take_along_axis(weights, order, axis=0)
        np.cumsum(sorted_weights, axis=0, out=work)
        # Component ranks 0..b are background where cumulative (exclusive)
        # is still below the ratio.
        background_sorted = buf["bg_sorted"]
        background_sorted[0] = True  # exclusive cumsum 0 < ratio (ratio > 0)
        np.less(work[:-1], self.background_ratio, out=background_sorted[1:])
        # Map back to original component order.
        background_flags = buf["bg_flags"]
        background_flags.fill(False)
        np.put_along_axis(background_flags, order, background_sorted, axis=0)

        matched_is_background = np.take_along_axis(
            background_flags, best[None, :, :], axis=0
        )[0]
        # foreground = no_match | (any_match & ~matched_is_background);
        # built in the freshly allocated take_along_axis result, which the
        # caller then owns.
        foreground = matched_is_background
        np.logical_not(foreground, out=foreground)
        np.logical_and(foreground, any_match, out=foreground)
        np.logical_or(foreground, no_match, out=foreground)

        self.frames_seen += 1
        return foreground

    def background_image(self) -> np.ndarray:
        """Return the current most-probable background estimate."""
        if not self.is_initialised:
            raise RuntimeError("background model has not seen any frame yet")
        assert self._weights is not None and self._means is not None
        best = np.argmax(self._weights, axis=0)
        return np.take_along_axis(self._means, best[None, :, :], axis=0)[0]


def mask_to_boxes(
    mask: np.ndarray,
    min_area: float = 4.0,
    dilation_iterations: int = 1,
    merge_touching: bool = True,
) -> List[Box]:
    """Convert a boolean foreground mask into RoI bounding boxes.

    Connected components are extracted with an 8-connected structuring
    element after an optional binary dilation (which joins fragmented
    blobs, as morphological post-processing does in real pipelines).
    Components smaller than ``min_area`` pixels are discarded as noise.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise ValueError("mask must be two-dimensional")
    if dilation_iterations > 0:
        mask = ndimage.binary_dilation(
            mask, structure=_STRUCTURE_8, iterations=dilation_iterations
        )
    labels, count = ndimage.label(mask, structure=_STRUCTURE_8)
    boxes: List[Box] = []
    if count == 0:
        return boxes
    slices = ndimage.find_objects(labels)
    for slc in slices:
        if slc is None:
            continue
        rows, cols = slc
        height = rows.stop - rows.start
        width = cols.stop - cols.start
        if height * width < min_area:
            continue
        boxes.append(Box(float(cols.start), float(rows.start), float(width), float(height)))
    if merge_touching and len(boxes) > 1:
        boxes = merge_overlapping(boxes)
    return boxes
