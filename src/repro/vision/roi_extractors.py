"""Analytic RoI extractors emulating the methods compared in Table IV.

The end-to-end pipeline operates at native 4K coordinates where rasterising
and running pixel algorithms for every frame of every scene would dominate
runtime without changing any conclusion.  The analytic extractors therefore
work directly on the ground-truth geometry, applying the characteristic
error profile of each extraction family:

* **GMM background subtraction** -- misses stationary, tiny and
  low-contrast objects; produces slightly loose boxes; occasionally merges
  nearby objects into one blob; a few false-positive blobs from
  illumination noise.
* **Optical flow** -- only sees moving objects; boxes are looser (motion
  blur over two frames), so it is the least bandwidth-efficient.
* **SSDLite-MobileNetV2 / Yolov3-MobileNetV2** -- lightweight detectors
  that run on a downsized frame, so recall collapses for small objects;
  boxes are tight when found.

The per-method parameters are calibrated so that the downstream AP and
bandwidth numbers land near Table IV of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.simulation.random_streams import RandomStreams
from repro.video.frames import Frame, GroundTruthObject
from repro.video.geometry import Box, merge_overlapping


@dataclass(frozen=True)
class ExtractorProfile:
    """Error-model parameters of one RoI extraction method."""

    name: str
    #: Smallest object height (pixels at 4K) reliably picked up.
    min_height: float
    #: Softness of the size cut-off; larger means a more gradual roll-off.
    height_softness: float
    #: Recall multiplier applied to objects moving less than
    #: ``motion_threshold`` pixels per frame (1.0 = motion is irrelevant).
    stationary_recall: float
    #: Displacement below which an object counts as stationary.
    motion_threshold: float
    #: Weight of the object's contrast in its recall.
    contrast_weight: float
    #: Baseline recall for large, moving, high-contrast objects.
    base_recall: float
    #: Boxes are expanded by this relative margin on each side (loose
    #: foreground masks transmit more pixels).
    box_margin: float
    #: Standard deviation of box-corner jitter relative to box size.
    box_jitter: float
    #: Expected number of spurious RoIs per frame.
    false_positives_per_frame: float
    #: Mean area (pixels) of a spurious RoI.
    false_positive_area: float
    #: Probability that two heavily-overlapping objects merge into one blob.
    merge_probability: float


#: Profiles calibrated to Table IV (RoI-only AP / +Partition AP / bandwidth).
EXTRACTOR_PROFILES: Dict[str, ExtractorProfile] = {
    "gmm": ExtractorProfile(
        name="gmm",
        min_height=28.0,
        height_softness=14.0,
        stationary_recall=0.55,
        motion_threshold=1.0,
        contrast_weight=0.55,
        base_recall=0.97,
        box_margin=0.05,
        box_jitter=0.04,
        false_positives_per_frame=1.0,
        false_positive_area=2200.0,
        merge_probability=0.20,
    ),
    "optical_flow": ExtractorProfile(
        name="optical_flow",
        min_height=30.0,
        height_softness=16.0,
        stationary_recall=0.15,
        motion_threshold=1.5,
        contrast_weight=0.35,
        base_recall=0.96,
        box_margin=0.22,
        box_jitter=0.09,
        false_positives_per_frame=2.5,
        false_positive_area=4200.0,
        merge_probability=0.45,
    ),
    "ssdlite_mobilenetv2": ExtractorProfile(
        name="ssdlite_mobilenetv2",
        min_height=60.0,
        height_softness=30.0,
        stationary_recall=1.0,
        motion_threshold=0.0,
        contrast_weight=0.40,
        base_recall=0.93,
        box_margin=0.28,
        box_jitter=0.04,
        false_positives_per_frame=3.0,
        false_positive_area=6000.0,
        merge_probability=0.10,
    ),
    "yolov3_mobilenetv2": ExtractorProfile(
        name="yolov3_mobilenetv2",
        min_height=75.0,
        height_softness=35.0,
        stationary_recall=1.0,
        motion_threshold=0.0,
        contrast_weight=0.45,
        base_recall=0.90,
        box_margin=0.08,
        box_jitter=0.03,
        false_positives_per_frame=1.0,
        false_positive_area=3000.0,
        merge_probability=0.08,
    ),
}


class AnalyticRoIExtractor:
    """RoI extraction emulated from ground-truth geometry.

    Parameters
    ----------
    profile:
        The error model to apply (one of :data:`EXTRACTOR_PROFILES` or a
        custom instance).
    streams:
        Random stream factory; the extractor draws from the stream named
        ``"roi/<profile.name>"``.
    """

    def __init__(
        self,
        profile: ExtractorProfile,
        streams: Optional[RandomStreams] = None,
    ) -> None:
        self.profile = profile
        self.streams = streams or RandomStreams(0)
        self.rng = self.streams.get(f"roi/{profile.name}")

    # ----------------------------------------------------------------- recall
    def detection_probability(self, obj: GroundTruthObject) -> float:
        """Probability that this extractor produces an RoI for ``obj``."""
        profile = self.profile
        # Size roll-off: a smooth logistic on the object's pixel height.
        height_term = 1.0 / (
            1.0 + np.exp(-(obj.box.height - profile.min_height) / profile.height_softness)
        )
        contrast_term = (
            1.0 - profile.contrast_weight
        ) + profile.contrast_weight * obj.contrast
        motion_term = 1.0
        if obj.motion < profile.motion_threshold:
            motion_term = profile.stationary_recall
        probability = profile.base_recall * height_term * contrast_term * motion_term
        return float(np.clip(probability, 0.0, 1.0))

    # ---------------------------------------------------------------- extract
    def extract(self, frame: Frame) -> List[Box]:
        """Return the RoI boxes the extractor finds in ``frame``."""
        rois: List[Box] = []
        for obj in frame.objects:
            if self.rng.random() > self.detection_probability(obj):
                continue
            rois.append(self._perturb_box(obj.box, frame))

        rois = self._merge_blobs(rois)
        rois.extend(self._false_positives(frame))
        return rois

    def _perturb_box(self, box: Box, frame: Frame) -> Box:
        profile = self.profile
        margin_w = profile.box_margin * box.width
        margin_h = profile.box_margin * box.height
        jitter_x = float(self.rng.normal(0.0, profile.box_jitter * box.width))
        jitter_y = float(self.rng.normal(0.0, profile.box_jitter * box.height))
        loose = Box(
            box.x - margin_w + jitter_x,
            box.y - margin_h + jitter_y,
            box.width + 2 * margin_w,
            box.height + 2 * margin_h,
        )
        clipped = loose.clip_to(frame.width, frame.height)
        return clipped if clipped is not None else box

    def _merge_blobs(self, rois: List[Box]) -> List[Box]:
        """Randomly merge overlapping RoIs into single blobs, as foreground
        masks of close-by pedestrians do."""
        if len(rois) < 2 or self.profile.merge_probability <= 0:
            return rois
        if self.rng.random() < self.profile.merge_probability:
            return merge_overlapping(rois)
        return rois

    def _false_positives(self, frame: Frame) -> List[Box]:
        profile = self.profile
        count = int(self.rng.poisson(profile.false_positives_per_frame))
        boxes: List[Box] = []
        for _ in range(count):
            area = max(64.0, float(self.rng.exponential(profile.false_positive_area)))
            aspect = float(self.rng.uniform(0.6, 1.8))
            width = float(np.sqrt(area / aspect))
            height = width * aspect
            x = float(self.rng.uniform(0, max(1.0, frame.width - width)))
            y = float(self.rng.uniform(0, max(1.0, frame.height - height)))
            clipped = Box(x, y, width, height).clip_to(frame.width, frame.height)
            if clipped is not None:
                boxes.append(clipped)
        return boxes


def make_extractor(
    name: str = "gmm", streams: Optional[RandomStreams] = None
) -> AnalyticRoIExtractor:
    """Construct the analytic extractor for one of the named methods."""
    if name not in EXTRACTOR_PROFILES:
        raise KeyError(
            f"unknown extractor {name!r}; valid names: {sorted(EXTRACTOR_PROFILES)}"
        )
    return AnalyticRoIExtractor(EXTRACTOR_PROFILES[name], streams=streams)
