"""Persistent performance-benchmark harness.

Unlike the pytest figure reproductions next door (which check *metrics*),
this package times the hot paths of the reproduction — the stitching
solver, the scheduler arrival path, the GMM frame loop, and one end-to-end
run — and writes the timings to a machine-readable ``BENCH_perf.json`` so
every future PR has a performance trajectory to compare against.

Run it with::

    PYTHONPATH=src python -m benchmarks.perf                # time + report
    PYTHONPATH=src python -m benchmarks.perf --check        # fail on >2x regression
    PYTHONPATH=src python -m benchmarks.perf --quick --check  # tier-1 smoke gate
    PYTHONPATH=src python -m benchmarks.perf --update-baseline

See ``benchmarks/perf/README.md`` for the JSON schema.
"""

from benchmarks.perf.harness import (
    BASELINE_PATH,
    QUICK_SECTIONS,
    BenchResult,
    check_against_baseline,
    load_baseline,
    run_all,
    write_results,
)

__all__ = [
    "BASELINE_PATH",
    "QUICK_SECTIONS",
    "BenchResult",
    "check_against_baseline",
    "load_baseline",
    "run_all",
    "write_results",
]
