"""CLI entry point: ``PYTHONPATH=src python -m benchmarks.perf``.

Modes
-----
default:
    Run every section, print a table plus the derived speedups, and write
    the report next to this file as ``BENCH_perf.last.json`` (the committed
    baseline is never overwritten implicitly).
``--check``:
    Additionally compare against the committed ``BENCH_perf.json`` and exit
    non-zero when any timed section regressed more than ``--max-regression``
    (default 2x) or the scheduler arrival speedup fell below
    ``--min-speedup`` (default 5x).
``--update-baseline``:
    Write the fresh report to ``BENCH_perf.json`` (commit it with the PR
    that changes performance).
``--quick``:
    Smoke mode: one repeat of the cheap 256-depth sections only.  The
    tier-1 test suite runs ``--quick --check`` (see
    ``tests/test_perf_smoke.py``) so hot-path regressions fail pytest.
``--profile``:
    Instead of the timed sections, run one instrumented deep-queue
    arrival scenario and print the per-stage time shares (probe /
    consolidation / commit), reproducing the ROADMAP's arrival-path
    profile from the harness.  ``--profile-mix`` picks the workload
    (``fleet`` or ``crowded``), ``--profile-depth`` the queue depth.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from benchmarks.perf.harness import (
    BASELINE_PATH,
    QUICK_SECTIONS,
    SECTIONS,
    check_against_baseline,
    load_baseline,
    profile_arrival,
    run_all,
    write_results,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.perf",
        description="Time the reproduction's hot paths and track regressions.",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail when a section regresses past --max-regression vs the baseline",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=f"write the report to the committed baseline ({BASELINE_PATH.name})",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="runs per section, best kept (default 3)"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke mode: 1 repeat, only the cheap 256-depth sections "
        "(deep-queue and fleet scenarios are skipped, and so are their "
        "derived-ratio gates) — what the tier-1 smoke test runs",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help="--check fails when a section is this many times slower (default 2.0)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="--check fails when the scheduler arrival speedup drops below this (default 5.0)",
    )
    parser.add_argument(
        "--min-index-speedup",
        type=float,
        default=3.0,
        help="--check fails when the depth-4096 index speedup drops below this (default 3.0)",
    )
    parser.add_argument(
        "--min-efficiency-ratio",
        type=float,
        default=0.99,
        help="--check fails when partial-re-pack (or skyline-stream) mean "
        "canvas efficiency falls below this fraction of its reference "
        "(default 0.99)",
    )
    parser.add_argument(
        "--min-skyline-speedup",
        type=float,
        default=2.0,
        help="--check fails when the skyline-vs-guillotine fleet re-pack "
        "speedup at depth 4096 drops below this (default 2.0)",
    )
    parser.add_argument(
        "--min-consolidation-speedup",
        type=float,
        default=1.5,
        help="--check fails when the depth-4096 memo-vs-repack "
        "consolidation speedup drops below this (default 1.5)",
    )
    parser.add_argument(
        "--min-canvas-index-speedup",
        type=float,
        default=1.3,
        help="--check fails when the depth-4096 canvas-admission-index "
        "(+ adaptive budget) speedup over the PR-4 fleet path drops "
        "below this (default 1.3)",
    )
    parser.add_argument(
        "--min-fleet-efficiency-ratio",
        type=float,
        default=0.95,
        help="--check fails when the churn run's delivered stream "
        "efficiency falls below this fraction of the fault-free run "
        "(default 0.95)",
    )
    parser.add_argument(
        "--max-fleet-overreaction",
        type=float,
        default=0.05,
        help="--check fails when the churn run sheds/expires more than "
        "the injected-fault fraction plus this margin (default 0.05)",
    )
    parser.add_argument(
        "--min-sharded-speedup",
        type=float,
        default=1.5,
        help="--check fails when the 4-shard frontend's scheduler-side "
        "patches/sec falls below this multiple of the single scheduler's "
        "(default 1.5)",
    )
    parser.add_argument(
        "--max-sharded-slo-delta",
        type=float,
        default=0.0,
        help="--check fails when the sharded run's SLO-violation rate "
        "exceeds the single scheduler's by more than this (default 0.0)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run the instrumented arrival-path profile (per-stage time "
        "shares: probe / consolidation / commit) instead of the sections",
    )
    parser.add_argument(
        "--profile-mix",
        choices=["fleet", "crowded"],
        default="fleet",
        help="--profile workload: the uniform fleet mix (default) or the "
        "consolidation A/B's crowded mix (backoff disabled, as in the A/B)",
    )
    parser.add_argument(
        "--profile-depth",
        type=int,
        default=4096,
        help="--profile queue depth (default 4096)",
    )
    parser.add_argument(
        "--ratios-only",
        action="store_true",
        help="--check gates only the same-run derived ratios, skipping the "
        "absolute per-section timing comparison against the committed "
        "baseline (for shared CI runners, where cross-machine wall-clock "
        "comparisons are noise)",
    )
    parser.add_argument(
        "--only",
        action="append",
        metavar="SECTION",
        help=f"run a subset of sections (choices: {', '.join(SECTIONS)})",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the fresh report (default: BENCH_perf.last.json)",
    )
    args = parser.parse_args(argv)

    if args.profile:
        report = profile_arrival(depth=args.profile_depth, mix=args.profile_mix)
        print(f"arrival-path profile: {report['section']}")
        print(f"{'stage'.ljust(14)}  seconds    share")
        for stage, entry in report["stages"].items():
            print(
                f"{stage.ljust(14)}  {entry['seconds']:8.4f}  "
                f"{100 * entry['share']:5.1f}%"
            )
        print(f"{'total'.ljust(14)}  {report['total_seconds']:8.4f}  100.0%")
        stats = report["consolidation_stats"]
        if stats:
            print(
                "consolidation: "
                + ", ".join(f"{key}={value}" for key, value in stats.items())
            )
        return 0

    if args.update_baseline and (args.only or args.quick):
        # A partial report would overwrite the baseline and silently drop
        # every section not re-run from the regression gate.
        parser.error(
            "--update-baseline requires running all sections (drop --only/--quick)"
        )

    only = args.only
    repeats = args.repeats
    if args.quick:
        only = only or list(QUICK_SECTIONS)
        repeats = 1

    report = run_all(repeats=repeats, only=only)
    sections = report["sections"]
    width = max(len(name) for name in sections)
    print(f"{'section'.ljust(width)}  seconds")
    for name, entry in sections.items():
        print(f"{name.ljust(width)}  {float(entry['seconds']):.6f}")
    for key, value in report.get("derived", {}).items():
        print(f"{key}: {value}x")

    output = args.output or (BASELINE_PATH.parent / "BENCH_perf.last.json")
    write_results(report, output)
    print(f"report written to {output}")

    # Snapshot the baseline *before* any update so `--update-baseline
    # --check` still compares against the previous run instead of the
    # report it just wrote (which would make the check a tautology).
    baseline = load_baseline()

    if args.update_baseline:
        write_results(report, BASELINE_PATH)
        print(f"baseline updated at {BASELINE_PATH}")

    if args.check:
        if baseline is None:
            print(f"ERROR: no committed baseline at {BASELINE_PATH}", file=sys.stderr)
            return 2
        failures = check_against_baseline(
            report,
            baseline,
            max_regression=args.max_regression,
            min_speedup=args.min_speedup,
            min_index_speedup=args.min_index_speedup,
            min_efficiency_ratio=args.min_efficiency_ratio,
            min_skyline_speedup=args.min_skyline_speedup,
            min_consolidation_speedup=args.min_consolidation_speedup,
            min_canvas_index_speedup=args.min_canvas_index_speedup,
            min_fleet_efficiency_ratio=args.min_fleet_efficiency_ratio,
            max_fleet_overreaction=args.max_fleet_overreaction,
            min_sharded_speedup=args.min_sharded_speedup,
            max_sharded_slo_delta=args.max_sharded_slo_delta,
            ratios_only=args.ratios_only,
        )
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("perf check passed: no section regressed past the threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
