"""Assembly of the PANDA4K-like dataset used throughout the evaluation.

The paper combines the first 100 frames of each scene into a 1000-sample
training set and evaluates on the remaining frames (134/134/134/48/33/122/
80/134/134/134 frames per scene).  :func:`build_panda4k` reproduces that
split over the synthetic scenes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.simulation.random_streams import RandomStreams
from repro.video.frames import Frame
from repro.video.generator import SceneGenerator
from repro.video.scenes import PANDA4K_SCENES, SceneProfile, get_scene


@dataclass
class SceneSplit:
    """The train/eval frames of one scene."""

    profile: SceneProfile
    train: List[Frame] = field(default_factory=list)
    eval: List[Frame] = field(default_factory=list)

    @property
    def all_frames(self) -> List[Frame]:
        return list(self.train) + list(self.eval)


@dataclass
class PandaDataset:
    """The full ten-scene dataset with per-scene train/eval splits."""

    scenes: Dict[str, SceneSplit] = field(default_factory=dict)

    @property
    def scene_keys(self) -> List[str]:
        return sorted(self.scenes)

    def split(self, scene_key: str) -> SceneSplit:
        if scene_key not in self.scenes:
            raise KeyError(f"scene {scene_key!r} not in dataset")
        return self.scenes[scene_key]

    def eval_frames(self, scene_key: str) -> List[Frame]:
        return self.split(scene_key).eval

    def train_frames(self, scene_key: str) -> List[Frame]:
        return self.split(scene_key).train

    @property
    def total_train_frames(self) -> int:
        return sum(len(split.train) for split in self.scenes.values())

    @property
    def total_eval_frames(self) -> int:
        return sum(len(split.eval) for split in self.scenes.values())


def build_scene_split(
    profile: SceneProfile,
    streams: Optional[RandomStreams] = None,
    fps: float = 2.0,
    max_concurrent_objects: Optional[int] = None,
    limit_frames: Optional[int] = None,
) -> SceneSplit:
    """Generate one scene and split it into train/eval parts.

    ``limit_frames`` truncates the total sequence, preserving the split
    proportions; it exists so tests and quick benchmark runs do not have to
    generate the full 234-frame sequences.
    """
    total = profile.total_frames if limit_frames is None else min(
        limit_frames, profile.total_frames
    )
    generator = SceneGenerator(
        profile,
        streams=streams,
        fps=fps,
        max_concurrent_objects=max_concurrent_objects,
    )
    frames = generator.generate(num_frames=total)
    if limit_frames is None:
        train_count = profile.train_frames
    else:
        # Preserve the paper's ~100/total proportion when truncating.
        train_count = max(1, int(round(total * profile.train_frames / profile.total_frames)))
    train_count = min(train_count, total)
    return SceneSplit(
        profile=profile, train=frames[:train_count], eval=frames[train_count:]
    )


def build_panda4k(
    seed: int = 0,
    scene_keys: Optional[List[str]] = None,
    fps: float = 2.0,
    max_concurrent_objects: Optional[int] = None,
    limit_frames: Optional[int] = None,
) -> PandaDataset:
    """Build the synthetic PANDA4K dataset.

    Parameters
    ----------
    seed:
        Root seed; every scene derives its own independent stream.
    scene_keys:
        Subset of scenes to build (default: all ten).
    fps:
        Timestamp spacing of generated frames.
    max_concurrent_objects:
        Optional cap on simultaneously simulated objects (used by
        pixel-level tests to keep rendering cheap).
    limit_frames:
        Optional truncation of each scene's sequence length.
    """
    streams = RandomStreams(seed)
    keys = scene_keys if scene_keys is not None else sorted(PANDA4K_SCENES)
    dataset = PandaDataset()
    for key in keys:
        profile = get_scene(key)
        dataset.scenes[key] = build_scene_split(
            profile,
            streams=streams.spawn(key),
            fps=fps,
            max_concurrent_objects=max_concurrent_objects,
            limit_frames=limit_frames,
        )
    return dataset
